//! # skippub-baselines
//!
//! Comparator systems for the paper's prose claims:
//!
//! * [`Chord`] — a Chord overlay \[13\]: hashed node points and finger
//!   tables. The paper (§1.3) claims the skip ring achieves *better
//!   congestion* "as the supervised approach allows a much more balanced
//!   distribution of the nodes" — experiment E10 measures degree spread,
//!   routing-transit load and broadcast load against this implementation.
//! * [`SkipGraph`] — a randomized skip graph \[10\] with membership
//!   vectors, the second comparator of that claim.
//! * [`Broker`] — the traditional client-server pub-sub of §1: a single
//!   broker carrying every publish; baseline for supervisor-load
//!   comparisons (the supervisor handles *no* publications).
//! * [`RingCast`] — ring-only publication routing in the spirit of
//!   PSVR [20, 21], which delivers publications in `O(n)` steps; the
//!   baseline that makes flooding's `O(log n)` visible (E9).
//!
//! All baselines are topology/cost models (the paper compares costs, not
//! implementations): they expose the same measurement surface
//! ([`metrics`]) as the ideal skip ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod chord;
pub mod metrics;
mod ringcast;
mod skipgraph;

pub use broker::Broker;
pub use chord::Chord;
pub use ringcast::RingCast;
pub use skipgraph::SkipGraph;
