//! A randomized skip graph [10]: every node draws an infinite random
//! membership vector; at level `i`, nodes sharing an `i`-bit prefix form a
//! doubly-linked list sorted by key. Degrees are `O(log n)` w.h.p. but —
//! unlike the supervised skip ring — randomized: level populations are
//! binomially split, so degree and search-load distributions have heavier
//! tails (comparator for E10).

use crate::metrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A skip graph over `n` nodes keyed `0..n`.
#[derive(Clone, Debug)]
pub struct SkipGraph {
    /// `membership[v]` = random bit vector (LSB-first levels).
    membership: Vec<u64>,
    /// `levels[v][i]` = (left, right) neighbours of `v` in its level-`i`
    /// list, if any.
    levels: Vec<Vec<(Option<usize>, Option<usize>)>>,
}

impl SkipGraph {
    /// Builds a skip graph of `n` nodes with seeded membership vectors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let membership: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        // Level 0 list: all nodes in key order. Higher levels: filter by
        // membership prefix.
        let mut levels: Vec<Vec<(Option<usize>, Option<usize>)>> = vec![Vec::new(); n];
        let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];
        let mut level = 0usize;
        while !groups.is_empty() && level < 64 {
            let mut next_groups = Vec::new();
            for g in &groups {
                // Link neighbours within this group at `level`.
                for (pos, &v) in g.iter().enumerate() {
                    let left = if pos > 0 { Some(g[pos - 1]) } else { None };
                    let right = if pos + 1 < g.len() {
                        Some(g[pos + 1])
                    } else {
                        None
                    };
                    while levels[v].len() <= level {
                        levels[v].push((None, None));
                    }
                    levels[v][level] = (left, right);
                }
                if g.len() > 1 {
                    let (zeros, ones): (Vec<usize>, Vec<usize>) =
                        g.iter().partition(|&&v| (membership[v] >> level) & 1 == 0);
                    if zeros.len() > 1 {
                        next_groups.push(zeros);
                    }
                    if ones.len() > 1 {
                        next_groups.push(ones);
                    }
                }
            }
            groups = next_groups;
            level += 1;
        }
        SkipGraph { membership, levels }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.membership.len()
    }

    /// Number of levels node `v` participates in.
    pub fn height(&self, v: usize) -> usize {
        self.levels[v].len()
    }

    /// Undirected adjacency (all level lists merged, deduplicated).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n()];
        for (v, lv) in self.levels.iter().enumerate() {
            for &(l, r) in lv {
                for u in [l, r].into_iter().flatten() {
                    adj[v].push(u);
                    adj[u].push(v);
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Skip-graph search from `from` to key `target`: descend from the
    /// highest common level, moving toward the target without
    /// overshooting. Returns the visited node sequence.
    pub fn search(&self, from: usize, target: usize) -> Vec<usize> {
        let mut path = vec![from];
        let mut cur = from;
        let mut level = self.height(cur).saturating_sub(1);
        let mut guard = 0;
        while cur != target && guard < 4 * 64 {
            guard += 1;
            let (l, r) = self.levels[cur].get(level).copied().unwrap_or((None, None));
            let step = if target > cur {
                r.filter(|&x| x <= target)
            } else {
                l.filter(|&x| x >= target)
            };
            match step {
                Some(nxt) => {
                    cur = nxt;
                    path.push(cur);
                    level = self.height(cur).saturating_sub(1).min(level);
                }
                None => {
                    if level == 0 {
                        break; // adjacent at level 0 yet not target: done
                    }
                    level -= 1;
                }
            }
        }
        path
    }

    /// Search transit loads over `samples` seeded random pairs.
    pub fn sampled_transit_loads(&self, samples: usize, seed: u64) -> Vec<usize> {
        let n = self.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(usize, usize)> = (0..samples)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        metrics::transit_loads(n, pairs.into_iter().map(|(a, b)| self.search(a, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heights_are_logarithmic() {
        let g = SkipGraph::new(256, 1);
        let max_h = (0..g.n()).map(|v| g.height(v)).max().unwrap();
        assert!(max_h >= 6, "too flat: {max_h}");
        assert!(max_h <= 30, "too tall: {max_h}");
    }

    #[test]
    fn graph_is_connected_with_log_diameter() {
        let g = SkipGraph::new(128, 2);
        let adj = g.adjacency();
        let d = metrics::diameter(&adj);
        assert!(d <= 24, "diameter {d} not logarithmic-ish");
    }

    #[test]
    fn search_finds_targets() {
        let g = SkipGraph::new(100, 3);
        for (a, b) in [(0usize, 99usize), (50, 3), (7, 7), (99, 0), (13, 87)] {
            let p = g.search(a, b);
            assert_eq!(*p.last().unwrap(), b, "search {a}→{b} got {p:?}");
            assert!(p.len() <= 40, "path too long: {}", p.len());
        }
    }

    #[test]
    fn degrees_are_logarithmic() {
        let g = SkipGraph::new(200, 4);
        let spread = metrics::degree_spread(&g.adjacency());
        assert!(spread.max <= 40, "max degree {} too high", spread.max);
        assert!(spread.avg >= 2.0);
    }

    #[test]
    fn single_node() {
        let g = SkipGraph::new(1, 5);
        assert_eq!(g.search(0, 0), vec![0]);
    }
}
