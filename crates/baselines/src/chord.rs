//! A Chord overlay [13]: nodes at hashed points on the `2⁶⁴` identifier
//! circle, each holding a successor pointer and `log`-many fingers
//! (`successor(p + 2^i)`). Used as congestion comparator (E10): random
//! placement makes arc lengths — and hence finger in-degrees and routing
//! transit loads — uneven, which is exactly the imbalance the supervised
//! skip ring avoids by construction.

use crate::metrics;
use skippub_bits::Hash128;

/// A Chord ring over `n` nodes.
#[derive(Clone, Debug)]
pub struct Chord {
    /// Sorted hashed points of the members.
    points: Vec<u64>,
}

impl Chord {
    /// Builds a Chord ring of `n` nodes with points derived by hashing
    /// `(seed, index)` — the paper's "hashing nodes to pseudorandom
    /// positions".
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0);
        let mut points: Vec<u64> = (0..n as u64)
            .map(|i| {
                let mut b = Vec::with_capacity(16);
                b.extend_from_slice(&seed.to_le_bytes());
                b.extend_from_slice(&i.to_le_bytes());
                Hash128::of_bytes(&b).words()[0]
            })
            .collect();
        points.sort_unstable();
        points.dedup();
        // Collisions on 64-bit points are ~impossible at test scale, but
        // keep n honest if they happen.
        Chord { points }
    }

    /// Number of members.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Index of `successor(p)`: the first member at or after `p`
    /// (wrapping).
    pub fn successor(&self, p: u64) -> usize {
        match self.points.binary_search(&p) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// Finger targets of member `i`: `successor(point_i + 2^k)` for
    /// `k = 0..64`, deduplicated, excluding `i` itself.
    pub fn fingers(&self, i: usize) -> Vec<usize> {
        let base = self.points[i];
        let mut out: Vec<usize> = (0..64)
            .map(|k| self.successor(base.wrapping_add(1u64 << k)))
            .filter(|&j| j != i)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Directed finger adjacency (out-edges).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        (0..self.n()).map(|i| self.fingers(i)).collect()
    }

    /// Undirected view (for diameter/broadcast comparisons with the
    /// undirected skip ring).
    pub fn adjacency_undirected(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n()];
        for (i, fs) in self.adjacency().into_iter().enumerate() {
            for f in fs {
                adj[i].push(f);
                adj[f].push(i);
            }
        }
        for v in &mut adj {
            v.sort_unstable();
            v.dedup();
        }
        adj
    }

    /// Greedy Chord routing from member `from` towards point `target`:
    /// repeatedly jump to the closest preceding finger. Returns the node
    /// index sequence ending at `successor(target)`.
    pub fn route(&self, from: usize, target: u64) -> Vec<usize> {
        let dest = self.successor(target);
        let mut path = vec![from];
        let mut cur = from;
        let mut guard = 0;
        while cur != dest && guard < 128 {
            // Distance remaining, clockwise.
            let dist = |i: usize| self.points[dest].wrapping_sub(self.points[i]);
            let here = dist(cur);
            let next = self
                .fingers(cur)
                .into_iter()
                .min_by_key(|&f| dist(f))
                .expect("n > 1 has fingers");
            if dist(next) >= here {
                // No progress (tiny rings): step to immediate successor.
                let succ = (cur + 1) % self.n();
                path.push(succ);
                cur = succ;
            } else {
                path.push(next);
                cur = next;
            }
            guard += 1;
        }
        path
    }

    /// Routing transit loads over `samples` seeded random (source, key)
    /// pairs.
    pub fn sampled_transit_loads(&self, samples: usize, seed: u64) -> Vec<usize> {
        let n = self.n();
        let paths = (0..samples as u64).map(move |s| {
            let mut b = Vec::with_capacity(16);
            b.extend_from_slice(&seed.to_le_bytes());
            b.extend_from_slice(&s.to_le_bytes());
            let h = Hash128::of_bytes(&b).words();
            self.route((h[0] % n as u64) as usize, h[1])
        });
        metrics::transit_loads(n, paths)
    }

    /// Arc length (key-space interval owned) of each member — the root of
    /// Chord's imbalance: random points make arcs uneven by a `Θ(log n)`
    /// factor, while the supervised skip ring's arcs differ by ≤ 2×.
    pub fn arc_lengths(&self) -> Vec<u64> {
        let n = self.n();
        (0..n)
            .map(|i| self.points[(i + 1) % n].wrapping_sub(self.points[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps() {
        let c = Chord::new(8, 1);
        assert_eq!(c.successor(u64::MAX), c.successor(c.points[0]));
        for (i, &p) in c.points.iter().enumerate() {
            assert_eq!(c.successor(p), i);
        }
    }

    #[test]
    fn fingers_are_logarithmic() {
        let c = Chord::new(128, 2);
        for i in 0..c.n() {
            let f = c.fingers(i).len();
            assert!(f <= 64, "finger table too large: {f}");
            assert!(f >= 3, "finger table too small: {f}");
        }
    }

    #[test]
    fn routing_reaches_destination() {
        let c = Chord::new(64, 3);
        for s in 0..16u64 {
            let target = s.wrapping_mul(0x9E3779B97F4A7C15);
            let path = c.route((s % 64) as usize, target);
            assert_eq!(*path.last().unwrap(), c.successor(target));
            assert!(path.len() <= 20, "path too long: {}", path.len());
        }
    }

    #[test]
    fn graph_is_connected() {
        let c = Chord::new(100, 4);
        let adj = c.adjacency_undirected();
        let d = metrics::bfs_hops(&adj, 0);
        assert!(d.iter().all(|&x| x != usize::MAX));
    }

    #[test]
    fn arcs_are_uneven() {
        let c = Chord::new(256, 5);
        let arcs = c.arc_lengths();
        let max = *arcs.iter().max().unwrap() as f64;
        let mean = arcs.iter().map(|&a| a as f64).sum::<f64>() / arcs.len() as f64;
        assert!(
            max / mean > 2.5,
            "random placement should be noticeably uneven (max/mean = {})",
            max / mean
        );
    }

    #[test]
    fn single_node_ring() {
        let c = Chord::new(1, 6);
        assert_eq!(c.n(), 1);
        assert!(c.fingers(0).is_empty());
        assert_eq!(c.route(0, 12345), vec![0]);
    }
}
