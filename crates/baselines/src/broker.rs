//! The traditional client-server publish-subscribe baseline (paper §1):
//! a central broker decouples publishers from subscribers but must carry
//! **every** publication to **every** subscriber. This cost model is the
//! foil for the supervised approach, whose supervisor handles only
//! subscribe/unsubscribe (O(1) messages each) and *zero* publication
//! traffic.

use std::collections::BTreeMap;

/// Message-count model of a central broker serving topic-based pub-sub.
#[derive(Clone, Debug, Default)]
pub struct Broker {
    /// topic → subscriber count.
    topics: BTreeMap<u32, usize>,
    /// Messages the broker has processed (in + out).
    pub server_msgs: u64,
    /// Publications routed.
    pub publications: u64,
}

impl Broker {
    /// New broker with no topics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A client subscribes to `topic`: one message in, one ack out.
    pub fn subscribe(&mut self, topic: u32) {
        *self.topics.entry(topic).or_insert(0) += 1;
        self.server_msgs += 2;
    }

    /// A client unsubscribes: one in, one out.
    pub fn unsubscribe(&mut self, topic: u32) {
        if let Some(c) = self.topics.get_mut(&topic) {
            *c = c.saturating_sub(1);
        }
        self.server_msgs += 2;
    }

    /// A publication on `topic`: one message in, one out **per
    /// subscriber** — the broker's Θ(subscribers) fan-out.
    pub fn publish(&mut self, topic: u32) {
        let subs = self.topics.get(&topic).copied().unwrap_or(0) as u64;
        self.server_msgs += 1 + subs;
        self.publications += 1;
    }

    /// Subscribers currently on `topic`.
    pub fn subscribers(&self, topic: u32) -> usize {
        self.topics.get(&topic).copied().unwrap_or(0)
    }

    /// Broker messages per publication so far.
    pub fn msgs_per_publication(&self) -> f64 {
        if self.publications == 0 {
            0.0
        } else {
            self.server_msgs as f64 / self.publications as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_scales_with_subscribers() {
        let mut b = Broker::new();
        for _ in 0..100 {
            b.subscribe(1);
        }
        let before = b.server_msgs;
        b.publish(1);
        assert_eq!(b.server_msgs - before, 101, "1 in + 100 out");
    }

    #[test]
    fn unsubscribe_reduces_fanout() {
        let mut b = Broker::new();
        b.subscribe(2);
        b.subscribe(2);
        b.unsubscribe(2);
        let before = b.server_msgs;
        b.publish(2);
        assert_eq!(b.server_msgs - before, 2);
        assert_eq!(b.subscribers(2), 1);
    }

    #[test]
    fn per_publication_average() {
        let mut b = Broker::new();
        for _ in 0..10 {
            b.subscribe(1);
        }
        for _ in 0..5 {
            b.publish(1);
        }
        assert!(b.msgs_per_publication() > 11.0);
    }

    #[test]
    fn unknown_topic_publish_costs_one() {
        let mut b = Broker::new();
        b.publish(42);
        assert_eq!(b.server_msgs, 1);
    }
}
