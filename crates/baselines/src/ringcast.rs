//! Ring-only publication routing in the spirit of PSVR [20, 21]: the
//! related work arranges nodes in a cycle (with shortcuts used only for
//! routing-table maintenance) and "delivers new publications for topics
//! to subscribers only after O(n) steps". This model measures that
//! delivery cost so E9 can contrast it with skip-ring flooding's
//! `O(log n)`.

/// A cost model of ring-sequential publication dissemination.
#[derive(Clone, Copy, Debug)]
pub struct RingCast {
    n: usize,
}

impl RingCast {
    /// A ring of `n` subscribers.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        RingCast { n }
    }

    /// Number of subscribers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Steps until the subscriber `hops_away` positions around the ring
    /// receives a publication forwarded in both directions.
    pub fn delivery_steps(&self, hops_away: usize) -> usize {
        let cw = hops_away % self.n;
        cw.min(self.n - cw)
    }

    /// Steps until **all** subscribers have the publication: half the
    /// ring when forwarded in both directions — `Θ(n)`.
    pub fn broadcast_steps(&self) -> usize {
        self.n / 2
    }

    /// Total messages of one broadcast: every edge carries it once per
    /// direction front, `n − 1` forwards plus the origin's 2 sends.
    pub fn broadcast_msgs(&self) -> usize {
        if self.n == 1 {
            0
        } else {
            self.n
        }
    }

    /// Ring adjacency for graph-level comparisons.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        (0..self.n)
            .map(|i| {
                if self.n == 1 {
                    Vec::new()
                } else if self.n == 2 {
                    vec![1 - i]
                } else {
                    vec![(i + self.n - 1) % self.n, (i + 1) % self.n]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn broadcast_is_linear() {
        assert_eq!(RingCast::new(16).broadcast_steps(), 8);
        assert_eq!(RingCast::new(1024).broadcast_steps(), 512);
    }

    #[test]
    fn delivery_takes_shorter_arc() {
        let r = RingCast::new(10);
        assert_eq!(r.delivery_steps(3), 3);
        assert_eq!(r.delivery_steps(7), 3);
        assert_eq!(r.delivery_steps(0), 0);
    }

    #[test]
    fn adjacency_diameter_matches() {
        let r = RingCast::new(12);
        assert_eq!(metrics::diameter(&r.adjacency()), 6);
    }

    #[test]
    fn tiny_rings() {
        assert_eq!(RingCast::new(1).broadcast_msgs(), 0);
        assert_eq!(RingCast::new(2).adjacency(), vec![vec![1], vec![0]]);
    }
}
