//! Shared topology measurements: degree spread, BFS broadcast, routing
//! transit load. All baselines (and the ideal skip ring) reduce to an
//! adjacency list for these.

use std::collections::VecDeque;

/// Degree statistics over an adjacency list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeSpread {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub avg: f64,
}

/// Computes degree spread.
pub fn degree_spread(adj: &[Vec<usize>]) -> DegreeSpread {
    let degs: Vec<usize> = adj.iter().map(Vec::len).collect();
    let min = degs.iter().copied().min().unwrap_or(0);
    let max = degs.iter().copied().max().unwrap_or(0);
    let avg = if degs.is_empty() {
        0.0
    } else {
        degs.iter().sum::<usize>() as f64 / degs.len() as f64
    };
    DegreeSpread { min, max, avg }
}

/// BFS hop distance from `start` to every node (`usize::MAX` when
/// unreachable).
pub fn bfs_hops(adj: &[Vec<usize>], start: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[start] = 0;
    let mut q = VecDeque::from([start]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `start`; panics if the graph is disconnected.
pub fn eccentricity(adj: &[Vec<usize>], start: usize) -> usize {
    let d = bfs_hops(adj, start);
    let m = d.iter().copied().max().unwrap_or(0);
    assert_ne!(m, usize::MAX, "graph is disconnected");
    m
}

/// Graph diameter (max eccentricity). Quadratic; experiment scale only.
pub fn diameter(adj: &[Vec<usize>]) -> usize {
    (0..adj.len())
        .map(|s| eccentricity(adj, s))
        .max()
        .unwrap_or(0)
}

/// Broadcast load: BFS from `root`; each node's load is the number of
/// children it forwards to in the BFS tree (the flooding fan-out actually
/// used). Returns per-node loads.
pub fn broadcast_loads(adj: &[Vec<usize>], root: usize) -> Vec<usize> {
    let mut load = vec![0usize; adj.len()];
    let mut dist = vec![usize::MAX; adj.len()];
    dist[root] = 0;
    let mut q = VecDeque::from([root]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                load[u] += 1;
                q.push_back(v);
            }
        }
    }
    load
}

/// Transit load over a set of routed paths: `paths` yields node-index
/// sequences; every *interior* node of a path gains one unit of load.
pub fn transit_loads(n: usize, paths: impl Iterator<Item = Vec<usize>>) -> Vec<usize> {
    let mut load = vec![0usize; n];
    for p in paths {
        if p.len() > 2 {
            for &v in &p[1..p.len() - 1] {
                load[v] += 1;
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i + 1 < n {
                    v.push(i + 1);
                }
                v
            })
            .collect()
    }

    #[test]
    fn spread_of_path() {
        let s = degree_spread(&path_graph(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.avg - 1.6).abs() < 1e-9);
    }

    #[test]
    fn bfs_and_diameter() {
        let g = path_graph(6);
        assert_eq!(bfs_hops(&g, 0)[5], 5);
        assert_eq!(diameter(&g), 5);
        assert_eq!(eccentricity(&g, 2), 3);
    }

    #[test]
    fn broadcast_load_of_star() {
        let mut g = vec![vec![]; 5];
        for i in 1..5 {
            g[0].push(i);
            g[i].push(0);
        }
        let load = broadcast_loads(&g, 0);
        assert_eq!(load[0], 4);
        assert_eq!(load[1..].iter().sum::<usize>(), 0);
    }

    #[test]
    fn transit_counts_interiors_only() {
        let loads = transit_loads(4, [vec![0, 1, 2, 3], vec![0, 3]].into_iter());
        assert_eq!(loads, vec![0, 1, 1, 0]);
    }
}
