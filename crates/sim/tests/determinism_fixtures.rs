//! Engine-refactor safety net: golden fingerprints of full simulation
//! trajectories.
//!
//! Each fixture drives a workload that exercises every scheduler path —
//! synchronous rounds, chaos rounds with fair receipt, handler-side RNG
//! draws, crash-consumes-messages, rejoin, and external injection — and
//! folds the *entire observable outcome* (metrics read API + per-node
//! protocol state) into one FNV-1a fingerprint.
//!
//! The constants below were captured from the pre-slab `BTreeMap`
//! engine. The slab engine must reproduce them exactly: the refactor
//! contract is "same seed → identical RNG-consumption order → identical
//! metrics and states". If an intentional semantic change ever breaks
//! them, re-derive the constants with `FIXTURE_PRINT=1 cargo test -p
//! skippub-sim --test determinism_fixtures -- --nocapture` and say so in
//! the changelog.

use skippub_sim::{ChaosConfig, Ctx, NodeId, Protocol, World};

/// Gossip protocol: forwards each rumor to two random peers while its
/// TTL lasts; drops it otherwise. Exercises handler RNG draws heavily.
#[derive(Clone)]
struct Gossip {
    peers: Vec<NodeId>,
    rumors_seen: u64,
    timeouts: u64,
}

#[derive(Clone, Debug)]
enum GossipMsg {
    Rumor(u32),
    Probe,
}

impl Protocol for Gossip {
    type Msg = GossipMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, GossipMsg>, msg: GossipMsg) {
        match msg {
            GossipMsg::Rumor(ttl) => {
                self.rumors_seen += 1;
                if ttl > 0 {
                    for _ in 0..2 {
                        let to = self.peers[ctx.random_range(self.peers.len())];
                        ctx.send(to, GossipMsg::Rumor(ttl - 1));
                    }
                }
            }
            GossipMsg::Probe => {}
        }
    }

    fn on_timeout(&mut self, ctx: &mut Ctx<'_, GossipMsg>) {
        self.timeouts += 1;
        // Occasionally probe a random peer so timeout handlers also
        // consume randomness and send traffic.
        if ctx.random_bool(0.25) {
            let to = self.peers[ctx.random_range(self.peers.len())];
            ctx.send(to, GossipMsg::Probe);
        }
    }

    fn msg_kind(msg: &GossipMsg) -> &'static str {
        match msg {
            GossipMsg::Rumor(_) => "rumor",
            GossipMsg::Probe => "probe",
        }
    }
}

fn gossip_world(n: u64, seed: u64) -> World<Gossip> {
    let mut w = World::new(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    for &id in &ids {
        w.add_node(
            id,
            Gossip {
                peers: ids.clone(),
                rumors_seen: 0,
                timeouts: 0,
            },
        );
    }
    w
}

#[inline]
fn fnv(h: &mut u64, v: u64) {
    let mut x = *h ^ v;
    x = x.wrapping_mul(0x100000001b3);
    *h = x;
}

/// Folds every externally observable quantity into one fingerprint:
/// totals, per-kind counts, per-node sent/received, in-flight load, and
/// per-node protocol state — all read through the public API in sorted
/// node order.
fn fingerprint(w: &World<Gossip>, kinds: &[&str]) -> u64 {
    let m = w.metrics();
    let mut h = 0xcbf29ce484222325u64;
    fnv(&mut h, m.sent_total);
    fnv(&mut h, m.delivered_total);
    fnv(&mut h, m.dropped);
    fnv(&mut h, m.rounds);
    for k in kinds {
        fnv(&mut h, m.kind(k));
    }
    for id in w.ids() {
        fnv(&mut h, id.0);
        fnv(&mut h, m.sent_by(id));
        fnv(&mut h, m.received_by(id));
        fnv(&mut h, w.channel_len(id) as u64);
    }
    for (id, g) in w.iter() {
        fnv(&mut h, id.0);
        fnv(&mut h, g.rumors_seen);
        fnv(&mut h, g.timeouts);
    }
    fnv(&mut h, w.in_flight() as u64);
    h
}

/// The mixed workload: sync rounds, chaos rounds, crashes, a rejoin,
/// and fresh injections between phases.
fn run_workload(seed: u64) -> u64 {
    let mut w = gossip_world(12, seed);
    for i in 0..4 {
        w.inject(NodeId(i), GossipMsg::Rumor(6));
    }
    for _ in 0..10 {
        w.run_round();
    }
    // Crash two nodes (one with traffic in flight), keep running.
    w.crash(NodeId(3));
    w.crash(NodeId(9));
    w.inject(NodeId(3), GossipMsg::Rumor(2)); // consumed silently
    for _ in 0..6 {
        w.run_round();
    }
    // Chaos phase with fair receipt.
    let cfg = ChaosConfig {
        delivery_prob: 0.35,
        timeout_prob: 0.6,
        max_age: 4,
    };
    w.inject(NodeId(0), GossipMsg::Rumor(5));
    for _ in 0..25 {
        w.run_chaos_round(cfg);
    }
    // Rejoin one crashed id with fresh state, then settle.
    let ids: Vec<NodeId> = (0..12).map(NodeId).collect();
    w.add_node(
        NodeId(3),
        Gossip {
            peers: ids,
            rumors_seen: 0,
            timeouts: 0,
        },
    );
    w.inject(NodeId(3), GossipMsg::Rumor(4));
    for _ in 0..8 {
        w.run_round();
    }
    fingerprint(&w, &["rumor", "probe"])
}

/// Golden fingerprints captured from the pre-slab engine (seed →
/// expected). See module docs for the re-derivation procedure.
const GOLDEN: &[(u64, u64)] = &[
    (1, 0x732f57977905e7ab),
    (7, 0x1bc0823e0121de4d),
    (42, 0x848ebe54fd4fecbb),
    (0xDEADBEEF, 0x9554d091815af91f),
];

#[test]
fn same_seed_reproduces_golden_fingerprints() {
    for &(seed, want) in GOLDEN {
        let got = run_workload(seed);
        if std::env::var("FIXTURE_PRINT").is_ok() {
            println!("    (seed {seed:#x} → {got:#018x})");
            continue;
        }
        assert_eq!(
            got, want,
            "trajectory fingerprint changed for seed {seed} — engine \
             semantics diverged from the recorded baseline"
        );
    }
}

#[test]
fn two_runs_in_one_process_agree() {
    for seed in [2u64, 5, 0xFEED] {
        assert_eq!(run_workload(seed), run_workload(seed));
    }
}
