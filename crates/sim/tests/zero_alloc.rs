//! The zero-allocation invariant, measured for real: once a world's
//! scratch buffers are warmed up, steady-state `run_round` /
//! `run_chaos_round` calls perform **zero heap allocations** in the
//! engine (protocol handlers can still allocate; the toy protocol here
//! deliberately does not).
//!
//! The measurement is exact, not statistical: the engine is fully
//! deterministic per seed (pure integer PRNG), so the allocation count
//! between two points of the workload is reproducible on every run and
//! platform. This file holds exactly one test so no parallel test
//! thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use skippub_sim::{ChaosConfig, Ctx, NodeId, Protocol, World};

/// Allocation-free toy protocol: forwards a token around a ring.
struct Ring {
    next: NodeId,
    seen: u64,
}

#[derive(Clone)]
struct Token(u32);

impl Protocol for Ring {
    type Msg = Token;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, msg: Token) {
        self.seen += 1;
        if msg.0 > 0 {
            ctx.send(self.next, Token(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, _ctx: &mut Ctx<'_, Token>) {}

    fn msg_kind(_m: &Token) -> &'static str {
        "token"
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    let n = 64u64;
    let mut w = World::new(0xA110C);
    for i in 0..n {
        w.add_node(
            NodeId(i),
            Ring {
                next: NodeId((i + 1) % n),
                seen: 0,
            },
        );
    }
    // The token population is constant (TTL never hits zero during the
    // test), so per-channel demand is bounded by the total population.
    // Inject the whole population at ONE node and drive it around the
    // ring: on a ring, co-located tokens travel as one pile, so every
    // channel (and the shared scratch) sees the worst-case burst during
    // warm-up and grows to its high-water mark exactly once.
    for _ in 0..n {
        w.inject(NodeId(0), Token(u32::MAX));
    }
    for _ in 0..(n + 8) {
        w.run_round();
    }
    // Chaos warm-up: random holding splits and re-merges the pile,
    // warming the chaos `kept` scratch as well.
    let chaos = ChaosConfig::default();
    for _ in 0..80 {
        w.run_chaos_round(chaos);
    }
    for _ in 0..(n + 8) {
        w.run_round();
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..200 {
        w.run_round();
    }
    let after_sync = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after_sync - before,
        0,
        "run_round must not allocate in steady state"
    );

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..200 {
        w.run_chaos_round(chaos);
    }
    let after_chaos = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after_chaos - before,
        0,
        "run_chaos_round must not allocate in steady state"
    );

    // Sanity: traffic actually flowed the whole time.
    assert_eq!(w.in_flight(), n as usize);
    assert!(w.metrics().delivered_total >= 400 * n);
}
