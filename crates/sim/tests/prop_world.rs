//! Property-based tests for the simulator: determinism per seed, fair
//! receipt under chaos, and crash semantics.

use proptest::prelude::*;
use skippub_sim::{ChaosConfig, Ctx, NodeId, Protocol, World};

/// Echo protocol: counts receipts; forwards messages with a TTL.
#[derive(Clone, Default)]
struct Echo {
    seen: u64,
    peers: Vec<NodeId>,
}

#[derive(Clone, Debug)]
struct Hop(u32);

impl Protocol for Echo {
    type Msg = Hop;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Hop>, msg: Hop) {
        self.seen += 1;
        if msg.0 > 0 && !self.peers.is_empty() {
            let next = self.peers[ctx.random_range(self.peers.len())];
            ctx.send(next, Hop(msg.0 - 1));
        }
    }

    fn on_timeout(&mut self, _ctx: &mut Ctx<'_, Hop>) {}

    fn msg_kind(_m: &Hop) -> &'static str {
        "hop"
    }
}

fn build(n: u64, seed: u64) -> World<Echo> {
    let mut w = World::new(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    for &id in &ids {
        w.add_node(id, Echo { seen: 0, peers: ids.clone() });
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn same_seed_same_trajectory(n in 2u64..8, seed in any::<u64>(), ttls in proptest::collection::vec(0u32..12, 1..6)) {
        let run = |seed: u64| {
            let mut w = build(n, seed);
            for (i, &t) in ttls.iter().enumerate() {
                w.inject(NodeId(i as u64 % n), Hop(t));
            }
            for _ in 0..30 {
                w.run_round();
            }
            let states: Vec<u64> = w.iter().map(|(_, e)| e.seen).collect();
            (states, w.metrics().sent_total, w.metrics().delivered_total)
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn all_messages_eventually_delivered_under_chaos(
        n in 2u64..7,
        seed in any::<u64>(),
        ttls in proptest::collection::vec(0u32..10, 1..8),
        delivery_prob in 0.05f64..0.9,
    ) {
        let mut w = build(n, seed);
        let expected: u64 = ttls.iter().map(|&t| u64::from(t) + 1).sum();
        for (i, &t) in ttls.iter().enumerate() {
            w.inject(NodeId(i as u64 % n), Hop(t));
        }
        let cfg = ChaosConfig { delivery_prob, timeout_prob: 0.3, max_age: 6 };
        let (_, done) = w.run_chaos_until(cfg, 4000, |w| {
            w.iter().map(|(_, e)| e.seen).sum::<u64>() == expected
        });
        prop_assert!(done, "fair receipt violated: {} of {} delivered",
            w.iter().map(|(_, e)| e.seen).sum::<u64>(), expected);
        prop_assert_eq!(w.in_flight(), 0);
        prop_assert_eq!(w.metrics().delivered_total, expected);
    }

    #[test]
    fn crash_then_rejoin_under_chaos_keeps_fair_receipt(
        n in 3u64..8,
        seed in any::<u64>(),
        ttls in proptest::collection::vec(0u32..8, 1..6),
        crash_after in 1u64..5,
        rejoin_after in 1u64..5,
        delivery_prob in 0.1f64..0.8,
    ) {
        let mut w = build(n, seed);
        let victim = NodeId(n - 1);
        let cfg = ChaosConfig { delivery_prob, timeout_prob: 0.3, max_age: 5 };
        for (i, &t) in ttls.iter().enumerate() {
            w.inject(NodeId(i as u64 % n), Hop(t));
        }
        for _ in 0..crash_after {
            w.run_chaos_round(cfg);
        }
        w.crash(victim);
        for _ in 0..rejoin_after {
            w.run_chaos_round(cfg);
        }
        w.add_node(victim, Echo { seen: 0, peers: (0..n).map(NodeId).collect() });
        // Fair receipt must fully drain the system: every message still
        // in flight is eventually delivered (the rejoined node included)
        // or was consumed by the crash window — nothing lingers forever.
        let (_, drained) = w.run_chaos_until(cfg, 4000, |w| w.in_flight() == 0);
        prop_assert!(drained, "fair receipt violated after crash+rejoin: {} in flight",
            w.in_flight());
        // Conservation: every sent message is accounted for exactly once.
        let m = w.metrics();
        prop_assert_eq!(m.sent_total, m.delivered_total + m.dropped);
        // The rejoined node is a first-class citizen again: traffic
        // addressed to it after rejoin is delivered, not dropped.
        let dropped_before = w.metrics().dropped;
        w.inject(victim, Hop(0));
        let (_, ok) = w.run_chaos_until(cfg, 4000, |w| {
            w.node(victim).map(|e| e.seen) >= Some(1)
        });
        prop_assert!(ok, "rejoined node never received its message");
        prop_assert_eq!(w.metrics().dropped, dropped_before);
    }

    #[test]
    fn crashes_never_lose_accounting(
        n in 3u64..8,
        seed in any::<u64>(),
        crash_at in 0u64..3,
    ) {
        let mut w = build(n, seed);
        for i in 0..n {
            w.inject(NodeId(i), Hop(6));
        }
        for round in 0..20 {
            if round == crash_at {
                w.crash(NodeId(n - 1));
                w.crash(NodeId(n - 2));
            }
            w.run_round();
        }
        let m = w.metrics();
        // Every sent message is accounted: delivered, dropped, or in flight.
        prop_assert_eq!(
            m.sent_total,
            m.delivered_total + m.dropped + w.in_flight() as u64
        );
        prop_assert_eq!(w.len() as u64, n - 2);
    }
}
