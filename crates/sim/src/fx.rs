//! A tiny deterministic hasher (FxHash-style multiply-xor) for the
//! engine's id → index maps.
//!
//! `std`'s default `SipHash` pays ~2× the lookup cost and its
//! `RandomState` seeds differ per process; the simulator never exposes
//! map iteration order, but deterministic hashing keeps lookups cheap
//! and removes any risk of process-dependent behavior sneaking in.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over 64-bit words (the rustc FxHash recipe).
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x517cc1b727220a95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(K);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
