//! The partition-generic slab stepping core.
//!
//! A [`Partition`] is one self-contained slice of a simulated system:
//! a dense node slab, its own seeded RNG stream, reusable scratch
//! buffers, and per-partition [`Metrics`]. The serial [`World`]
//! (`crate::World`) is exactly one partition in *local-only* mode
//! (sends to unknown nodes are dropped, §3.3); the parallel
//! [`PartitionedWorld`](crate::PartitionedWorld) owns many partitions
//! and routes sends between them as [`Envelope`]s.
//!
//! The slab layout, zero-allocation invariant, and RNG-consumption
//! order documented on [`crate::World`] all live *here* — the wrapper
//! types add routing policy, never stepping semantics.
//!
//! # Struct-of-arrays slab
//!
//! The slab is stored as three parallel arrays indexed by slot:
//! `channels` (the in-flight message vectors), `meta` (id, metrics
//! index, alive flag — 16 bytes per slot), and `protos` (the protocol
//! state, which for the pub-sub stack is hundreds of bytes per node).
//! The round sweep touches `channels` and `meta` for **every** slot
//! every round but `protos` only for slots that actually handle a
//! message or fire a timeout, so the hot loop walks two dense arrays
//! instead of striding through cold protocol state. Crashes tombstone
//! `protos[s]` and clear (not drop) `channels[s]`, so a rejoin reuses
//! both the slot and its channel capacity.

use crate::faults::{Fate, FaultCounts, FaultPlane, FaultSpec};
use crate::fx::FxBuildHasher;
use crate::state::{NodeState, PartitionState};
use crate::Metrics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::mem;

/// Unique node identifier (`v.id ∈ N` in the paper). The protocol layer
/// reserves an ID for the supervisor; the simulator treats all nodes
/// uniformly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine driven by the world.
///
/// Handlers receive a [`Ctx`] for sending messages and drawing randomness;
/// they must not block and must not communicate through any other channel
/// (the paper's model: local variables + messages only).
pub trait Protocol {
    /// The wire message type.
    type Msg: Clone;

    /// Handles one delivered message (the remote action call
    /// `⟨label⟩(⟨parameters⟩)`).
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, msg: Self::Msg);

    /// The periodic `Timeout` action.
    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Classifies a message for metrics (e.g. `"GetConfiguration"`).
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }
}

/// Monotone per-key change counters — the engine's **dirty-channel
/// table**. Protocols report "something checkable changed on channel
/// `key`" via [`Ctx::mark_dirty`]; observers read the counters through
/// [`World::dirty_version`](crate::World::dirty_version) (or the
/// partitioned aggregate) and re-examine a channel only when its version
/// moved. The engine attaches no meaning to keys: the protocol layer
/// picks the keying scheme (the pub-sub layer uses two keys per topic —
/// topology and publications).
///
/// Reads of unknown keys return 0 and never grow the table, so polling
/// a quiescent channel allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct DirtyTable {
    versions: Vec<u64>,
}

impl DirtyTable {
    /// Bumps `key`'s version (growing the table on first sight).
    #[inline]
    pub fn bump(&mut self, key: u32) {
        let key = key as usize;
        if key >= self.versions.len() {
            self.versions.resize(key + 1, 0);
        }
        self.versions[key] += 1;
    }

    /// Current version of `key` (0 if never bumped). Never allocates.
    #[inline]
    pub fn version(&self, key: u32) -> u64 {
        self.versions.get(key as usize).copied().unwrap_or(0)
    }

    /// The raw version table, indexed by key (checkpoint export).
    pub fn export(&self) -> Vec<u64> {
        self.versions.clone()
    }

    /// Rebuilds a table from an exported raw version vector.
    pub fn import(versions: Vec<u64>) -> Self {
        DirtyTable { versions }
    }
}

/// Handler-side context: the only way a node interacts with the world.
pub struct Ctx<'a, M> {
    me: NodeId,
    round: u64,
    out: &'a mut Vec<(NodeId, M)>,
    rng: &'a mut StdRng,
    dirty: &'a mut DirtyTable,
}

impl<M> Ctx<'_, M> {
    /// The executing node's own ID.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current round number (diagnostics only — protocols must not branch
    /// on global time, but logging it is harmless).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` to `to` (puts it into `to`'s channel).
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Bernoulli draw from the world's seeded RNG.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.random_bool(p)
        }
    }

    /// Uniform draw from `0..n` (`n > 0`).
    #[inline]
    pub fn random_range(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    /// Reports that protocol state relevant to dirty channel `key`
    /// changed during this handler invocation (see [`DirtyTable`]).
    /// Consumes no randomness and sends nothing — purely observational,
    /// so marking can never perturb a trajectory.
    #[inline]
    pub fn mark_dirty(&mut self, key: u32) {
        self.dirty.bump(key);
    }

    /// Runs `f` with a **nested** context of a different message type,
    /// collecting its sends into `out` — the hook for adapter protocols
    /// that wrap an inner protocol and re-tag its messages (the §4
    /// multi-topic construction). The nested context shares this
    /// context's node identity, round, and RNG stream, so the adapter
    /// pays no per-call RNG construction and no allocation beyond the
    /// caller-provided (reusable) buffer.
    #[inline]
    pub fn nest<M2>(
        &mut self,
        out: &mut Vec<(NodeId, M2)>,
        f: impl FnOnce(&mut Ctx<'_, M2>),
    ) {
        let mut inner = Ctx {
            me: self.me,
            round: self.round,
            out,
            rng: self.rng,
            dirty: self.dirty,
        };
        f(&mut inner);
    }
}

/// Backing for [`crate::testing::run_handler`]: materializes a detached
/// context (contexts have private fields by design — protocol crates can
/// only obtain one from a world or from this test hook).
pub(crate) fn detached_ctx_run<M>(
    me: NodeId,
    seed: u64,
    f: impl FnOnce(&mut Ctx<'_, M>),
) -> Vec<(NodeId, M)> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = DirtyTable::default();
    let mut ctx = Ctx {
        me,
        round: 0,
        out: &mut out,
        rng: &mut rng,
        dirty: &mut dirty,
    };
    f(&mut ctx);
    out
}

/// Chaos-scheduler tuning.
///
/// Together these knobs realize the paper's §1.1/§3.3 channel model in
/// its adversarial form: delivery is reliable but unordered with
/// unbounded *finite* delay. `delivery_prob` randomizes per-message
/// delay, `max_age` enforces **fair message receipt** (no message stays
/// in a channel forever — once its age exceeds the bound it is
/// force-delivered), and `timeout_prob` realizes the weakly fair
/// periodic `Timeout` action (over infinitely many rounds every node
/// fires infinitely often).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Probability an in-flight message is delivered this round.
    pub delivery_prob: f64,
    /// Probability a node fires its `Timeout` this round.
    pub timeout_prob: f64,
    /// Forced delivery after this many rounds in flight (fair receipt).
    pub max_age: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            delivery_prob: 0.5,
            timeout_prob: 0.5,
            max_age: 8,
        }
    }
}

/// A cross-partition message in flight between two partitions of a
/// [`PartitionedWorld`](crate::PartitionedWorld): stamped with its
/// source partition and a per-source monotone sequence number, so the
/// receiving partition can merge its inbound batch in the canonical
/// `(src, seq)` order regardless of which worker thread enqueued what
/// first.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Source partition index.
    pub src: u32,
    /// Monotone per-source sequence number.
    pub seq: u64,
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub msg: M,
}

/// Hot per-slot identity: everything the round sweep needs to decide
/// what to do with a slot *without* touching the (cold, large) protocol
/// state. 16 bytes, `Copy`.
#[derive(Clone, Copy)]
struct Meta {
    /// The node id occupying the slot (stale once tombstoned).
    id: u64,
    /// Stable per-id metrics index (survives crash + rejoin).
    midx: u32,
    /// Whether the slot is live (mirrors `protos[s].is_some()`).
    alive: bool,
}

/// One slot's in-flight channel: pending messages with their age in
/// rounds — the unit that travels with a node on cross-partition
/// migration.
pub(crate) type Channel<P> = Vec<(u32, <P as Protocol>::Msg)>;

/// One partition of a simulated system: the slab engine extracted from
/// the serial `World`.
///
/// In **local-only** mode (the serial world) a send to an id this
/// partition does not host is consumed and counted dropped (§3.3: the
/// destination does not exist anywhere). Otherwise the send is staged
/// in the partition's `outbox` for the executor to route — the
/// destination may live in a sibling partition.
pub(crate) struct Partition<P: Protocol> {
    /// Hot: per-slot in-flight messages with their age in rounds.
    /// Tombstoned slots keep their (cleared) vector so a rejoin reuses
    /// the capacity.
    channels: Vec<Vec<(u32, P::Msg)>>,
    /// Hot: per-slot identity and liveness (see [`Meta`]).
    meta: Vec<Meta>,
    /// Cold: protocol state; `None` is a tombstone left by a crash.
    protos: Vec<Option<P>>,
    /// Tombstoned slot indices available for reuse.
    free: Vec<u32>,
    /// Live id → slot index (deterministic hashing, O(1) probes).
    slot_of: HashMap<u64, u32, FxBuildHasher>,
    /// Live `(id, slot)` pairs sorted by id — the canonical iteration
    /// order (matches the old `BTreeMap` engine's sorted-key order).
    order: Vec<(u64, u32)>,
    rng: StdRng,
    metrics: Metrics,
    /// Dirty-channel versions reported by handlers via
    /// [`Ctx::mark_dirty`] (plus external bumps routed by the wrapper).
    dirty: DirtyTable,
    round: u64,
    /// Serial-world routing policy (see type docs).
    local_only: bool,
    /// Per-node per-round delivery budget; `None` = unbounded (the
    /// paper's synchronous model, byte-identical to the pre-budget
    /// engine). With `Some(b)` a node delivers at most `b` messages per
    /// activation and carries the rest over with age+1.
    budget: Option<u32>,
    /// High-water mark of [`Partition::in_flight`], sampled at the top
    /// of every round (after the executor's mailbox drain, so
    /// cross-partition arrivals are counted where they land).
    peak_in_flight: usize,
    /// Cross-partition sends staged during a step, in send order.
    outbox: Vec<(NodeId, P::Msg)>,
    /// Next cross-partition sequence number (monotone per partition).
    seq: u64,
    /// Cumulative cross-partition envelopes this partition emitted.
    cross_sent: u64,
    /// Cumulative node activations (live slots visited by a round) —
    /// together with delivered counts, the per-partition work gauge the
    /// skew rebalancer and imbalance metrics read.
    stepped: u64,
    /// Cumulative mailbox lock acquisitions (drains + batched flushes).
    /// Data-determined — one per non-empty destination batch plus one
    /// per drain — so it is identical for every worker count.
    lock_acquisitions: u64,
    /// Scratch: per-destination-partition envelope batches, flushed with
    /// one lock per non-empty destination instead of one per envelope.
    staging: Vec<Vec<Envelope<P::Msg>>>,
    /// Scratch: shuffled activation order (slot indices).
    scratch_order: Vec<u32>,
    /// Scratch: the inbox snapshot being drained for one node.
    scratch_inbox: Vec<(u32, P::Msg)>,
    /// Scratch: chaos-mode / over-budget messages kept in flight for
    /// one node.
    scratch_kept: Vec<(u32, P::Msg)>,
    /// Scratch: the outbox handed to each handler invocation.
    scratch_out: Vec<(NodeId, P::Msg)>,
    /// Scratch: inbound envelope batch taken from the mailbox.
    scratch_inbound: Vec<Envelope<P::Msg>>,
    /// The armed link-fault plane (`None` = perfect channels — the
    /// fault-free path is byte-identical to the pre-fault engine and
    /// consumes zero fault-stream draws).
    faults: Option<FaultPlane<P::Msg>>,
}

impl<P: Protocol> Partition<P> {
    /// Creates an empty partition seeded with its own RNG stream.
    pub(crate) fn new(seed: u64, local_only: bool) -> Self {
        Partition {
            channels: Vec::new(),
            meta: Vec::new(),
            protos: Vec::new(),
            free: Vec::new(),
            slot_of: HashMap::default(),
            order: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            dirty: DirtyTable::default(),
            round: 0,
            local_only,
            budget: None,
            peak_in_flight: 0,
            outbox: Vec::new(),
            seq: 0,
            cross_sent: 0,
            stepped: 0,
            lock_acquisitions: 0,
            staging: Vec::new(),
            scratch_order: Vec::new(),
            scratch_inbox: Vec::new(),
            scratch_kept: Vec::new(),
            scratch_out: Vec::new(),
            scratch_inbound: Vec::new(),
            faults: None,
        }
    }

    /// Adds a node. Panics on duplicate IDs (a corrupted *world*, unlike a
    /// corrupted protocol state, is a harness bug).
    pub(crate) fn add_node(&mut self, id: NodeId, proto: P) {
        assert!(
            !self.slot_of.contains_key(&id.0),
            "duplicate node {id}"
        );
        let midx = self.metrics.intern_node(id);
        let meta = Meta {
            id: id.0,
            midx,
            alive: true,
        };
        let s = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.protos[s as usize].is_none());
                debug_assert!(self.channels[s as usize].is_empty());
                self.protos[s as usize] = Some(proto);
                self.meta[s as usize] = meta;
                s
            }
            None => {
                self.protos.push(Some(proto));
                self.meta.push(meta);
                self.channels.push(Vec::new());
                (self.protos.len() - 1) as u32
            }
        };
        self.slot_of.insert(id.0, s);
        let pos = self
            .order
            .binary_search_by_key(&id.0, |&(i, _)| i)
            .unwrap_err();
        self.order.insert(pos, (id.0, s));
    }

    /// Crashes a node without warning (§3.3): its state vanishes and all
    /// current and future messages to it are consumed without any action.
    pub(crate) fn crash(&mut self, id: NodeId) {
        if let Some(s) = self.slot_of.remove(&id.0) {
            let s = s as usize;
            debug_assert!(self.protos[s].is_some());
            self.protos[s] = None;
            self.meta[s].alive = false;
            self.metrics.dropped += self.channels[s].len() as u64;
            self.channels[s].clear();
            self.free.push(s as u32);
            let pos = self
                .order
                .binary_search_by_key(&id.0, |&(i, _)| i)
                .expect("live node is ordered");
            self.order.remove(pos);
        }
    }

    /// Extracts a live node for migration to a sibling partition:
    /// returns its protocol state and pending channel contents (which
    /// travel with the node — unlike [`Partition::crash`], nothing is
    /// consumed). `None` if the node is not hosted here.
    pub(crate) fn extract_node(&mut self, id: NodeId) -> Option<(P, Channel<P>)> {
        let s = self.slot_of.remove(&id.0)?;
        let s = s as usize;
        let proto = self.protos[s].take().expect("live slot");
        self.meta[s].alive = false;
        let pending = std::mem::take(&mut self.channels[s]);
        self.free.push(s as u32);
        let pos = self
            .order
            .binary_search_by_key(&id.0, |&(i, _)| i)
            .expect("live node is ordered");
        self.order.remove(pos);
        Some((proto, pending))
    }

    /// Installs a node extracted from a sibling partition, restoring
    /// its pending channel contents (message ages included, so budget
    /// carry-over and chaos aging continue exactly where they left off).
    pub(crate) fn install_node(&mut self, id: NodeId, proto: P, pending: Channel<P>) {
        self.add_node(id, proto);
        let s = self.slot_of[&id.0] as usize;
        self.channels[s] = pending;
    }

    /// Whether `id` is currently hosted live here.
    pub(crate) fn is_alive(&self, id: NodeId) -> bool {
        self.slot_of.contains_key(&id.0)
    }

    /// IDs of all live nodes, sorted. Allocates — external convenience
    /// only; the round loop uses the internal order scratch.
    pub(crate) fn ids(&self) -> Vec<NodeId> {
        self.order.iter().map(|&(i, _)| NodeId(i)).collect()
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    #[inline]
    fn slot(&self, id: NodeId) -> Option<u32> {
        self.slot_of.get(&id.0).copied()
    }

    /// Immutable access to a node's protocol state (checkers, snapshots).
    pub(crate) fn node(&self, id: NodeId) -> Option<&P> {
        let s = self.slot(id)?;
        self.protos[s as usize].as_ref()
    }

    /// Mutable access — used by adversarial initializers to corrupt
    /// protocol variables before a run, and by operations that model local
    /// user input (subscribe/publish calls).
    pub(crate) fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let s = self.slot(id)?;
        self.protos[s as usize].as_mut()
    }

    /// Iterates over `(id, state)` of live nodes in id order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.order.iter().map(|&(i, s)| {
            let proto = self.protos[s as usize].as_ref().expect("live slot");
            (NodeId(i), proto)
        })
    }

    /// Live `(id, slot)` pairs in id order — the k-way merge input for
    /// [`PartitionedWorld::iter`](crate::PartitionedWorld::iter).
    pub(crate) fn order(&self) -> &[(u64, u32)] {
        &self.order
    }

    /// The protocol state in slot `s` (must be live).
    pub(crate) fn proto_at(&self, s: u32) -> &P {
        self.protos[s as usize].as_ref().expect("live slot")
    }

    /// Injects a message into `to`'s channel from outside the system
    /// (external requests, or corrupted initial channel content).
    /// Local-only routing: the caller resolves the partition.
    pub(crate) fn inject(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.note_sent(to, P::msg_kind(&msg));
        match self.slot(to) {
            Some(s) => self.channels[s as usize].push((0, msg)),
            None => self.metrics.dropped += 1,
        }
    }

    /// Number of in-flight messages to `id`.
    pub(crate) fn channel_len(&self, id: NodeId) -> usize {
        self.slot(id)
            .map_or(0, |s| self.channels[s as usize].len())
    }

    /// Total in-flight messages in this partition's channels, plus
    /// messages the fault plane is holding for later release (they are
    /// still in flight — drain/settle loops must not conclude early).
    pub(crate) fn in_flight(&self) -> usize {
        let held = self.faults.as_ref().map_or(0, |fp| fp.pending.len());
        self.order
            .iter()
            .map(|&(_, s)| self.channels[s as usize].len())
            .sum::<usize>()
            + held
    }

    /// Cumulative metrics of this partition.
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// This partition's dirty-channel table.
    pub(crate) fn dirty(&self) -> &DirtyTable {
        &self.dirty
    }

    /// Mutable dirty-channel table (external-operation bumps).
    pub(crate) fn dirty_mut(&mut self) -> &mut DirtyTable {
        &mut self.dirty
    }

    /// Rounds this partition has stepped.
    pub(crate) fn round(&self) -> u64 {
        self.round
    }

    /// Cumulative cross-partition envelopes emitted by this partition.
    pub(crate) fn cross_sent(&self) -> u64 {
        self.cross_sent
    }

    /// Cumulative node activations (live slots visited by rounds).
    pub(crate) fn stepped(&self) -> u64 {
        self.stepped
    }

    /// Cumulative mailbox lock acquisitions (see field docs).
    pub(crate) fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions
    }

    /// Sets the per-node per-round delivery budget (`None` = unbounded).
    pub(crate) fn set_budget(&mut self, budget: Option<u32>) {
        self.budget = budget;
    }

    /// The current delivery budget.
    pub(crate) fn budget(&self) -> Option<u32> {
        self.budget
    }

    /// Arms (or disarms) the link-fault plane for this partition;
    /// window offsets in `spec` are relative to the current round.
    /// `me` is this partition's index (0 for the serial world).
    pub(crate) fn set_faults(&mut self, spec: Option<FaultSpec>, me: u32) {
        self.faults = spec.map(|s| FaultPlane::new(s, self.round, me));
    }

    /// The armed fault plane, if any.
    pub(crate) fn fault_plane(&self) -> Option<&FaultPlane<P::Msg>> {
        self.faults.as_ref()
    }

    /// This partition's fault accounting (zeros when no plane armed).
    pub(crate) fn fault_counts(&self) -> FaultCounts {
        self.faults.as_ref().map(|fp| fp.counts).unwrap_or_default()
    }

    /// Index of the first sever window active *now* that contains
    /// `id`, if any — backends watch this to turn a scheduled
    /// partition into a supervisor failover.
    pub(crate) fn active_sever_containing(&self, id: NodeId) -> Option<usize> {
        self.faults
            .as_ref()
            .and_then(|fp| fp.active_sever_containing(self.round, id.0))
    }

    /// Moves held messages whose release round has come into their
    /// destination channels (or the cross-partition outbox), in
    /// deterministic `(release round, insertion order)`. Runs at the
    /// top of every round, after the round counter advances and before
    /// any activation, so a released message is visible to its
    /// destination's very next inbox take.
    fn release_due(&mut self) {
        let Some(mut fp) = self.faults.take() else {
            return;
        };
        let due = fp.pending.partition_point(|e| e.0 <= self.round);
        for (_, _, to, msg) in fp.pending.drain(..due) {
            match self.slot_of.get(&to.0) {
                Some(&s) => self.channels[s as usize].push((0, msg)),
                None if self.local_only => self.metrics.dropped += 1,
                None => self.outbox.push((to, msg)),
            }
        }
        self.faults = Some(fp);
    }

    /// High-water mark of in-flight messages, sampled at round starts.
    pub(crate) fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Lets the harness drive a node as if it acted locally: runs `f` with
    /// the node's state and a context, then routes whatever it sent.
    /// Returns `None` if the node does not exist. In partitioned mode the
    /// caller must flush the outbox afterwards.
    pub(crate) fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        let s = self.slot(id)?;
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        let midx = self.meta[s as usize].midx;
        let proto = self.protos[s as usize].as_mut().expect("live slot");
        let mut ctx = Ctx {
            me: id,
            round,
            out: &mut out,
            rng: &mut self.rng,
            dirty: &mut self.dirty,
        };
        let r = f(proto, &mut ctx);
        self.route_from(id, midx, &mut out);
        self.scratch_out = out;
        Some(r)
    }

    /// Routes a drained outbox: one O(1) slot probe per message; the
    /// buffer is left empty for reuse by the caller. Unknown
    /// destinations are dropped in local-only mode and staged in the
    /// cross-partition outbox otherwise.
    ///
    /// With a fault plane armed this is the **sender-side** injection
    /// point: sever windows cut the edge `from – to` outright (pure
    /// set membership, zero draws), and rules resolvable at the sender
    /// (`All`/`AnyLocal`/`Local` for local destinations, `Group` edge
    /// sets for any destination) decide drop/duplicate/hold fates from
    /// the partition's local fault stream.
    fn route_from(&mut self, from: NodeId, from_midx: u32, out: &mut Vec<(NodeId, P::Msg)>) {
        let round = self.round;
        for (to, msg) in out.drain(..) {
            self.metrics.note_sent_at(from_midx, P::msg_kind(&msg));
            let local_slot = self.slot_of.get(&to.0).copied();
            if local_slot.is_none() && self.local_only {
                // §3.3: the destination exists nowhere — no link for
                // the fault plane to act on.
                self.metrics.dropped += 1;
                continue;
            }
            let fate = match self.faults.as_mut() {
                Some(fp) => {
                    if fp.severed(round, from.0, to.0) {
                        fp.counts.dropped_by_fault += 1;
                        continue;
                    }
                    fp.sender_fate(round, from.0, to.0, local_slot.is_some())
                }
                None => Fate::Deliver,
            };
            match fate {
                Fate::Deliver => match local_slot {
                    Some(s) => self.channels[s as usize].push((0, msg)),
                    None => self.outbox.push((to, msg)),
                },
                Fate::Drop => {
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    fp.counts.dropped_by_fault += 1;
                }
                Fate::Duplicate => {
                    match local_slot {
                        Some(s) => self.channels[s as usize].push((0, msg.clone())),
                        None => self.outbox.push((to, msg.clone())),
                    }
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    fp.counts.duplicated += 1;
                    fp.defer(round + 2, to, msg);
                }
                Fate::Hold { extra, reorder } => {
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    if reorder {
                        fp.counts.reordered += 1;
                    } else {
                        fp.counts.delayed += 1;
                    }
                    fp.defer(round + 1 + extra as u64, to, msg);
                }
            }
        }
    }

    /// Delivers one message to the node in slot `s` and routes its sends.
    fn deliver_slot(&mut self, s: u32, msg: P::Msg) {
        let Meta { id, midx, alive } = self.meta[s as usize];
        if !alive {
            self.metrics.dropped += 1;
            return;
        }
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        self.metrics.note_delivered_at(midx);
        let proto = self.protos[s as usize].as_mut().expect("live slot");
        let mut ctx = Ctx {
            me: NodeId(id),
            round,
            out: &mut out,
            rng: &mut self.rng,
            dirty: &mut self.dirty,
        };
        proto.on_message(&mut ctx, msg);
        self.route_from(NodeId(id), midx, &mut out);
        self.scratch_out = out;
    }

    /// Fires `Timeout` for the node in slot `s` and routes its sends.
    fn fire_timeout_slot(&mut self, s: u32) {
        let Meta { id, midx, alive } = self.meta[s as usize];
        if !alive {
            return;
        }
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        let proto = self.protos[s as usize].as_mut().expect("live slot");
        let mut ctx = Ctx {
            me: NodeId(id),
            round,
            out: &mut out,
            rng: &mut self.rng,
            dirty: &mut self.dirty,
        };
        proto.on_timeout(&mut ctx);
        self.route_from(NodeId(id), midx, &mut out);
        self.scratch_out = out;
    }

    /// Takes the shuffled activation order into the caller's buffer.
    /// Shuffling over id-sorted live nodes keeps the RNG-consumption
    /// order identical to the old engine's `ids()`-then-shuffle.
    fn shuffled_order(&mut self) -> Vec<u32> {
        let mut order = mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(self.order.iter().map(|&(_, s)| s));
        order.shuffle(&mut self.rng);
        order
    }

    /// Moves one node's channel snapshot into the inbox scratch.
    /// `append` (not `swap`) on purpose: the channel keeps its own
    /// capacity, so each node's buffer converges to its personal
    /// high-water mark and stays there — swapping would shuffle
    /// capacities randomly between nodes and re-trigger growth whenever
    /// a traffic burst lands on a buffer that happened to be small.
    /// Returns `None` for a tombstoned slot.
    fn take_inbox(&mut self, s: u32) -> Option<Vec<(u32, P::Msg)>> {
        if !self.meta[s as usize].alive {
            return None;
        }
        let mut inbox = mem::take(&mut self.scratch_inbox);
        debug_assert!(inbox.is_empty());
        inbox.append(&mut self.channels[s as usize]);
        Some(inbox)
    }

    /// Returns carried-over messages to slot `s`'s channel (or drops
    /// them on a tombstone), leaving `kept` empty for reuse.
    fn keep_in_channel(&mut self, s: u32, kept: &mut Vec<(u32, P::Msg)>) {
        if self.meta[s as usize].alive {
            self.channels[s as usize].append(kept);
        } else {
            self.metrics.dropped += kept.len() as u64;
            kept.clear();
        }
    }

    /// One **synchronous round** — the paper's §3.3 "timeout interval":
    /// every live node, in random order, first processes (in random
    /// order) all messages that were in its channel when it was
    /// activated, then executes `Timeout` exactly once. Messages a node
    /// sends to itself while processing are handled next round.
    ///
    /// With a delivery [budget](Partition::set_budget) set, a node
    /// processes at most `b` messages of its shuffled inbox and carries
    /// the rest over to the next round with age+1, so in-flight memory
    /// stays O(n·b) under bursts instead of O(n·degree). `None` (the
    /// default) is byte-identical to the unbudgeted engine — the budget
    /// branch consumes no randomness of its own.
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub(crate) fn run_round(&mut self) {
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
        self.round += 1;
        self.release_due();
        let order = self.shuffled_order();
        for &s in &order {
            let Some(mut inbox) = self.take_inbox(s) else {
                continue;
            };
            self.stepped += 1;
            inbox.shuffle(&mut self.rng);
            match self.budget {
                None => {
                    for (_, msg) in inbox.drain(..) {
                        self.deliver_slot(s, msg);
                    }
                }
                Some(b) => {
                    let b = b as usize;
                    let mut kept = mem::take(&mut self.scratch_kept);
                    debug_assert!(kept.is_empty());
                    for (i, (age, msg)) in inbox.drain(..).enumerate() {
                        if i < b {
                            self.deliver_slot(s, msg);
                        } else {
                            kept.push((age + 1, msg));
                        }
                    }
                    if !kept.is_empty() {
                        self.keep_in_channel(s, &mut kept);
                    }
                    self.scratch_kept = kept;
                }
            }
            self.scratch_inbox = inbox;
            self.fire_timeout_slot(s);
        }
        self.scratch_order = order;
        self.metrics.rounds += 1;
    }

    /// One **chaos round**: every node, in random order, delivers a
    /// random subset of its channel — each message independently with
    /// probability [`ChaosConfig::delivery_prob`], *forced* once its age
    /// exceeds [`ChaosConfig::max_age`] (the paper's fair message
    /// receipt: unbounded but finite delay) — and fires `Timeout` with
    /// probability [`ChaosConfig::timeout_prob`] (weak fairness comes
    /// from infinitely many rounds).
    ///
    /// A delivery [budget](Partition::set_budget) caps deliveries per
    /// node per round; once exhausted the remaining messages are kept
    /// with age+1 **without** consuming a delivery draw, so a `None`
    /// budget leaves the RNG stream untouched. The cap defers even
    /// over-age messages — fair receipt is then guaranteed by budget
    /// ≥ 1 per round (ages only grow), not by `max_age` alone.
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub(crate) fn run_chaos_round(&mut self, cfg: ChaosConfig) {
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
        self.round += 1;
        self.release_due();
        let cap = self.budget.map_or(usize::MAX, |b| b as usize);
        let order = self.shuffled_order();
        for &s in &order {
            let Some(mut inbox) = self.take_inbox(s) else {
                continue;
            };
            self.stepped += 1;
            inbox.shuffle(&mut self.rng);
            let mut kept = mem::take(&mut self.scratch_kept);
            debug_assert!(kept.is_empty());
            let mut delivered = 0usize;
            for (age, msg) in inbox.drain(..) {
                if delivered >= cap {
                    kept.push((age + 1, msg));
                    continue;
                }
                let force = age >= cfg.max_age;
                if force || self.rng.random_bool(cfg.delivery_prob) {
                    self.deliver_slot(s, msg);
                    delivered += 1;
                } else {
                    kept.push((age + 1, msg));
                }
            }
            // Keep undelivered messages (new sends may have arrived).
            self.keep_in_channel(s, &mut kept);
            self.scratch_kept = kept;
            self.scratch_inbox = inbox;
            if self.rng.random_bool(cfg.timeout_prob) {
                self.fire_timeout_slot(s);
            }
        }
        self.scratch_order = order;
        self.metrics.rounds += 1;
    }

    /// Drains the inbound mailbox into local channels, merging the batch
    /// in the canonical `(src partition, seq)` order — the only order in
    /// which cross-partition messages may enter channels, regardless of
    /// the worker interleaving that enqueued them. Envelopes to nodes
    /// that crashed since sending are consumed (§3.3).
    pub(crate) fn drain_inbound(&mut self, mailbox: &std::sync::Mutex<Vec<Envelope<P::Msg>>>) {
        let mut batch = mem::take(&mut self.scratch_inbound);
        debug_assert!(batch.is_empty());
        self.lock_acquisitions += 1;
        mem::swap(&mut batch, &mut *mailbox.lock().expect("mailbox poisoned"));
        batch.sort_unstable_by_key(|e| (e.src, e.seq));
        let round = self.round;
        for env in batch.drain(..) {
            // Receiver-side fault injection: rules classed
            // `All`/`AnyCross`/`Cross` draw from the per-source-
            // partition stream, in the canonical post-sort order — so
            // fates are data-determined and thread-count-invariant.
            let fate = match self.faults.as_mut() {
                Some(fp) => fp.cross_fate(round, env.src),
                None => Fate::Deliver,
            };
            match fate {
                Fate::Deliver => match self.slot_of.get(&env.to.0) {
                    Some(&s) => self.channels[s as usize].push((0, env.msg)),
                    None => self.metrics.dropped += 1,
                },
                Fate::Drop => {
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    fp.counts.dropped_by_fault += 1;
                }
                Fate::Duplicate => {
                    match self.slot_of.get(&env.to.0) {
                        Some(&s) => self.channels[s as usize].push((0, env.msg.clone())),
                        None => self.metrics.dropped += 1,
                    }
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    fp.counts.duplicated += 1;
                    fp.defer(round + 2, env.to, env.msg);
                }
                Fate::Hold { extra, reorder } => {
                    let fp = self.faults.as_mut().expect("fate from armed plane");
                    if reorder {
                        fp.counts.reordered += 1;
                    } else {
                        fp.counts.delayed += 1;
                    }
                    fp.defer(round + 1 + extra as u64, env.to, env.msg);
                }
            }
        }
        self.scratch_inbound = batch;
    }

    /// Routes the staged cross-partition sends: each becomes an
    /// [`Envelope`] stamped `(me, seq)` and lands in the destination
    /// partition's mailbox; sends to ids no partition hosts are dropped
    /// here, charged to this (the sending) partition.
    ///
    /// Envelopes are first batched into reusable per-destination staging
    /// buffers, then each **non-empty** destination mailbox is locked
    /// exactly once and the whole batch appended — at most one lock per
    /// partition pair per round instead of one per envelope. The stamp
    /// order is unchanged (outbox send order), and within one mailbox a
    /// source's envelopes arrive as one contiguous seq-ascending run, so
    /// the receiver's canonical `(src, seq)` sort reproduces exactly the
    /// merge the per-envelope path produced.
    pub(crate) fn flush_outbox(
        &mut self,
        me: u32,
        home: &HashMap<u64, u32, FxBuildHasher>,
        mailboxes: &[std::sync::Mutex<Vec<Envelope<P::Msg>>>],
    ) {
        if self.outbox.is_empty() {
            return;
        }
        if self.staging.len() < mailboxes.len() {
            self.staging.resize_with(mailboxes.len(), Vec::new);
        }
        for (to, msg) in self.outbox.drain(..) {
            match home.get(&to.0) {
                Some(&dest) => {
                    let env = Envelope {
                        src: me,
                        seq: self.seq,
                        to,
                        msg,
                    };
                    self.seq += 1;
                    self.cross_sent += 1;
                    self.staging[dest as usize].push(env);
                }
                None => self.metrics.dropped += 1,
            }
        }
        for (dest, batch) in self.staging.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.lock_acquisitions += 1;
            mailboxes[dest]
                .lock()
                .expect("mailbox poisoned")
                .append(batch);
        }
    }

    /// Exports the partition's exact state for a checkpoint: live nodes
    /// in id order with channel contents, RNG words, and every stepping
    /// register. Must be called at a round boundary — the cross-partition
    /// outbox must be flushed (staged sends would otherwise be lost).
    pub(crate) fn export_state(&self) -> PartitionState<P>
    where
        P: Clone,
    {
        debug_assert!(self.outbox.is_empty(), "export with staged outbox sends");
        debug_assert!(
            self.staging.iter().all(Vec::is_empty),
            "export with staged envelope batches"
        );
        PartitionState {
            nodes: self
                .order
                .iter()
                .map(|&(i, s)| NodeState {
                    id: NodeId(i),
                    proto: self.protos[s as usize].as_ref().expect("live slot").clone(),
                    channel: self.channels[s as usize].clone(),
                })
                .collect(),
            rng: self.rng.state(),
            round: self.round,
            budget: self.budget,
            metrics: self.metrics.export(),
            dirty: self.dirty.export(),
            peak_in_flight: self.peak_in_flight as u64,
            seq: self.seq,
            cross_sent: self.cross_sent,
            stepped: self.stepped,
            lock_acquisitions: self.lock_acquisitions,
            faults: self.faults.clone(),
        }
    }

    /// Rebuilds a partition from an exported state. Stepping the result
    /// is byte-identical to stepping the original: the activation
    /// shuffle draws over live-node order (restored exactly), sends to
    /// dead ids miss `slot_of` and drop identically, and metrics import
    /// precedes `add_node` so every node re-interns onto its original
    /// counter index. Tombstones and free slots are *not* recreated —
    /// they never influence behavior.
    pub(crate) fn from_state(state: PartitionState<P>, local_only: bool) -> Self {
        let mut p = Partition::new(0, local_only);
        p.metrics = Metrics::import(&state.metrics);
        for node in state.nodes {
            p.add_node(node.id, node.proto);
            let s = p.slot_of[&node.id.0] as usize;
            p.channels[s] = node.channel;
        }
        p.rng = StdRng::from_state(state.rng);
        p.dirty = DirtyTable::import(state.dirty);
        p.round = state.round;
        p.budget = state.budget;
        p.peak_in_flight = state.peak_in_flight as usize;
        p.seq = state.seq;
        p.cross_sent = state.cross_sent;
        p.stepped = state.stepped;
        p.lock_acquisitions = state.lock_acquisitions;
        p.faults = state.faults;
        p
    }

    /// Capacity currently reserved by the scratch buffers —
    /// `(order, inbox, kept, out)`. Test hook for the zero-allocation
    /// invariant: steady-state rounds must not grow these.
    pub(crate) fn scratch_capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.scratch_order.capacity(),
            self.scratch_inbox.capacity(),
            self.scratch_kept.capacity(),
            self.scratch_out.capacity(),
        )
    }
}
