//! Deterministic link-fault plane: seeded loss, duplication, bounded
//! reordering, extra delay, and scheduled partitions at the
//! envelope/channel layer.
//!
//! # Model
//!
//! A [`FaultSpec`] is a schedule of [`FaultRule`]s (probabilistic
//! per-link models) and [`Sever`]s (deterministic partition windows).
//! All windows are **relative to the round at which the plane is
//! armed** (`set_faults` captures the base round), so the same spec
//! means the same thing regardless of how many warm-up rounds ran
//! before it.
//!
//! Faults are applied at two deterministic choke points of the engine:
//!
//! * **sender side** (`route_from`): sever windows (pure set
//!   membership, zero randomness) and rules whose [`LinkClass`] is
//!   resolvable from `(from, to)` at the sender — `All`/`AnyLocal`/
//!   `Local` for same-partition destinations, and `Group` edge sets
//!   for any destination;
//! * **receiver side** (`drain_inbound`): rules classed
//!   `All`/`AnyCross`/`Cross` applied to inbound cross-partition
//!   envelopes *after* the canonical `(src, seq)` sort, drawing from a
//!   per-source-partition stream.
//!
//! # Determinism
//!
//! Every probabilistic decision draws from a SplitMix64 stream derived
//! from `(spec seed, destination partition, source partition)` — never
//! from the partition's protocol RNG — so arming a fault plane never
//! perturbs the protocol trajectory by stealing draws, and all
//! decisions happen in partition-local, data-determined order:
//! byte-identical results for every worker-thread count. Probabilities
//! `<= 0` and `>= 1` short-circuit **without consuming a draw**, which
//! makes a `drop: 1.0` edge set byte-identical to the equivalent
//! [`Sever`] (both consume zero randomness and drop at the same spot).

use crate::NodeId;

/// SplitMix64 increment (golden ratio) — the same constant the
/// partition seed splitter uses.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the stream seed for the link class `(src → dst)`; the
/// intra-partition stream of partition `d` uses `src = u64::MAX`.
fn stream_seed(seed: u64, dst: u64, src: u64) -> u64 {
    mix64(
        seed.wrapping_add(dst.wrapping_add(1).wrapping_mul(GOLDEN))
            .wrapping_add(mix64(src.wrapping_add(1).wrapping_mul(GOLDEN))),
    )
}

/// Advances a SplitMix64 stream and returns the next word.
#[inline]
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    mix64(*state)
}

/// Uniform draw in `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bernoulli draw. `p <= 0` and `p >= 1` short-circuit **without
/// consuming a draw** (the clamp that makes `drop: 1.0` byte-identical
/// to a sever — see module docs).
#[inline]
fn chance(state: &mut u64, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        unit_f64(state) < p
    }
}

/// Uniform draw in `1..=n` (`n == 0` treated as 1, no draw).
#[inline]
fn bounded(state: &mut u64, n: u32) -> u32 {
    if n <= 1 {
        1
    } else {
        1 + (next_u64(state) % n as u64) as u32
    }
}

/// Which links a [`FaultRule`] governs. Partition indices refer to the
/// engine's partitions (the serial world is a single partition, so
/// only `All`, `AnyLocal`, `Local { partition: 0 }`, and `Group` ever
/// match there — backend-portable specs use those).
#[derive(Clone, Debug, PartialEq)]
pub enum LinkClass {
    /// Every link, intra- and cross-partition.
    All,
    /// Every cross-partition link.
    AnyCross,
    /// Every intra-partition link.
    AnyLocal,
    /// The directed cross-partition link `src → dst`.
    Cross {
        /// Source partition index.
        src: u32,
        /// Destination partition index.
        dst: u32,
    },
    /// Intra-partition links of one partition.
    Local {
        /// The partition index.
        partition: u32,
    },
    /// The edge set between a node-id group and its complement —
    /// exactly the edges a [`Sever`] with the same group cuts. Checked
    /// at the sender for both local and cross destinations.
    Group(Vec<u64>),
}

/// One probabilistic per-link fault model, active on a relative round
/// window. Per message, the draws happen in a fixed order — drop, then
/// duplicate, then delay, then reorder — and the first hit wins.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Window start, in rounds relative to arming (inclusive).
    pub from_round: u64,
    /// Window end, relative (exclusive). Finite ⇒ the window closes.
    pub to_round: u64,
    /// Which links this rule governs (first matching rule wins).
    pub link: LinkClass,
    /// Probability a message is dropped.
    pub drop: f64,
    /// Probability a message is duplicated (the copy arrives one round
    /// after the original).
    pub dup: f64,
    /// Probability a message is held for exactly
    /// [`delay_rounds`](FaultRule::delay_rounds) extra rounds.
    pub delay: f64,
    /// Fixed extra delay in rounds (≥ 1; 0 is treated as 1).
    pub delay_rounds: u32,
    /// Probability a message is held for a *random* `1..=reorder_max`
    /// extra rounds — displacing it past later traffic (bounded
    /// reordering).
    pub reorder: f64,
    /// Upper bound on the random reorder displacement (≥ 1).
    pub reorder_max: u32,
}

impl FaultRule {
    /// A rule that leaves every message alone (useful as a literal
    /// base for struct-update syntax in tests and specs).
    pub fn pass(from_round: u64, to_round: u64, link: LinkClass) -> Self {
        FaultRule {
            from_round,
            to_round,
            link,
            drop: 0.0,
            dup: 0.0,
            delay: 0.0,
            delay_rounds: 1,
            reorder: 0.0,
            reorder_max: 1,
        }
    }
}

/// A scheduled partition: for relative rounds `from_round..to_round`
/// every edge with exactly one endpoint in `group` is severed (both
/// directions), then heals. Pure set membership — zero randomness.
#[derive(Clone, Debug, PartialEq)]
pub struct Sever {
    /// Window start, relative to arming (inclusive).
    pub from_round: u64,
    /// Window end, relative (exclusive).
    pub to_round: u64,
    /// Node ids on one side of the cut (sorted at arming).
    pub group: Vec<u64>,
}

impl Sever {
    /// Whether `id` is in the severed group (group must be sorted).
    #[inline]
    fn contains(&self, id: u64) -> bool {
        self.group.binary_search(&id).is_ok()
    }
}

/// A complete fault schedule: its own seed (independent of the world
/// seed), probabilistic rules, and scheduled partitions.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultSpec {
    /// Seed for the per-link SplitMix64 streams.
    pub seed: u64,
    /// Probabilistic per-link models (first active match wins).
    pub rules: Vec<FaultRule>,
    /// Scheduled partitions.
    pub severs: Vec<Sever>,
}

impl FaultSpec {
    /// Largest relative round at which any window is still open — the
    /// schedule is fully healed from this round on. 0 for an empty spec.
    pub fn max_window_end(&self) -> u64 {
        self.rules
            .iter()
            .map(|r| r.to_round)
            .chain(self.severs.iter().map(|s| s.to_round))
            .max()
            .unwrap_or(0)
    }

    /// Whether the schedule only loses or delays messages (no
    /// duplication, no reordering) — the class for which the fault-free
    /// twin's delivered set must be matched exactly after healing.
    pub fn is_loss_delay_only(&self) -> bool {
        self.rules.iter().all(|r| r.dup == 0.0 && r.reorder == 0.0)
    }

    /// Sorts and dedups every group so membership checks can binary
    /// search and the text form is canonical. Called at arming; callers
    /// that serialize a spec before arming (trace headers) call it too.
    pub fn normalize(&mut self) {
        for s in &mut self.severs {
            s.group.sort_unstable();
            s.group.dedup();
        }
        for r in &mut self.rules {
            if let LinkClass::Group(g) = &mut r.link {
                g.sort_unstable();
                g.dedup();
            }
        }
    }

    /// Compact single-line encoding for trace headers and the
    /// `--faults` CLI flag. Round-trips through [`FaultSpec::parse_line`].
    ///
    /// Grammar: `seed=S` / `rule=FROM..TO,LINK,drop,dup,delay,delayR,`
    /// `reorder,reorderMax` / `sever=FROM..TO,id+id+...`, joined by
    /// `;`. Link tokens: `all`, `xany`, `lany`, `x:SRC>DST`, `l:P`,
    /// `g:id+id+...`.
    pub fn to_line(&self) -> String {
        use std::fmt::Write;
        let mut s = format!("seed={}", self.seed);
        let ids = |g: &[u64]| {
            g.iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join("+")
        };
        for r in &self.rules {
            let link = match &r.link {
                LinkClass::All => "all".to_string(),
                LinkClass::AnyCross => "xany".to_string(),
                LinkClass::AnyLocal => "lany".to_string(),
                LinkClass::Cross { src, dst } => format!("x:{src}>{dst}"),
                LinkClass::Local { partition } => format!("l:{partition}"),
                LinkClass::Group(g) => format!("g:{}", ids(g)),
            };
            write!(
                s,
                ";rule={}..{},{},{},{},{},{},{},{}",
                r.from_round,
                r.to_round,
                link,
                r.drop,
                r.dup,
                r.delay,
                r.delay_rounds,
                r.reorder,
                r.reorder_max
            )
            .expect("write to string");
        }
        for v in &self.severs {
            write!(s, ";sever={}..{},{}", v.from_round, v.to_round, ids(&v.group))
                .expect("write to string");
        }
        s
    }

    /// Parses the [`FaultSpec::to_line`] encoding.
    pub fn parse_line(line: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        let parse_window = |s: &str| -> Result<(u64, u64), String> {
            let (a, b) = s
                .split_once("..")
                .ok_or_else(|| format!("bad window {s:?} (want FROM..TO)"))?;
            let from = a.parse().map_err(|e| format!("bad round {a:?}: {e}"))?;
            let to = b.parse().map_err(|e| format!("bad round {b:?}: {e}"))?;
            Ok((from, to))
        };
        let parse_ids = |s: &str| -> Result<Vec<u64>, String> {
            s.split('+')
                .filter(|t| !t.is_empty())
                .map(|t| t.parse().map_err(|e| format!("bad id {t:?}: {e}")))
                .collect()
        };
        for tok in line.split(';') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("bad fault token {tok:?}"))?;
            match key {
                "seed" => {
                    spec.seed = val.parse().map_err(|e| format!("bad seed {val:?}: {e}"))?;
                }
                "rule" => {
                    let parts: Vec<&str> = val.split(',').collect();
                    if parts.len() != 8 {
                        return Err(format!(
                            "rule {val:?} wants 8 comma fields, got {}",
                            parts.len()
                        ));
                    }
                    let (from_round, to_round) = parse_window(parts[0])?;
                    let link = match parts[1] {
                        "all" => LinkClass::All,
                        "xany" => LinkClass::AnyCross,
                        "lany" => LinkClass::AnyLocal,
                        t => {
                            if let Some(rest) = t.strip_prefix("x:") {
                                let (a, b) = rest
                                    .split_once('>')
                                    .ok_or_else(|| format!("bad link {t:?}"))?;
                                LinkClass::Cross {
                                    src: a.parse().map_err(|e| format!("bad link {t:?}: {e}"))?,
                                    dst: b.parse().map_err(|e| format!("bad link {t:?}: {e}"))?,
                                }
                            } else if let Some(rest) = t.strip_prefix("l:") {
                                LinkClass::Local {
                                    partition: rest
                                        .parse()
                                        .map_err(|e| format!("bad link {t:?}: {e}"))?,
                                }
                            } else if let Some(rest) = t.strip_prefix("g:") {
                                LinkClass::Group(parse_ids(rest)?)
                            } else {
                                return Err(format!("unknown link class {t:?}"));
                            }
                        }
                    };
                    let pf = |s: &str| -> Result<f64, String> {
                        s.parse().map_err(|e| format!("bad probability {s:?}: {e}"))
                    };
                    let pu = |s: &str| -> Result<u32, String> {
                        s.parse().map_err(|e| format!("bad round count {s:?}: {e}"))
                    };
                    spec.rules.push(FaultRule {
                        from_round,
                        to_round,
                        link,
                        drop: pf(parts[2])?,
                        dup: pf(parts[3])?,
                        delay: pf(parts[4])?,
                        delay_rounds: pu(parts[5])?,
                        reorder: pf(parts[6])?,
                        reorder_max: pu(parts[7])?,
                    });
                }
                "sever" => {
                    let (window, ids) = val
                        .split_once(',')
                        .ok_or_else(|| format!("sever {val:?} wants WINDOW,IDS"))?;
                    let (from_round, to_round) = parse_window(window)?;
                    spec.severs.push(Sever {
                        from_round,
                        to_round,
                        group: parse_ids(ids)?,
                    });
                }
                _ => return Err(format!("unknown fault key {key:?}")),
            }
        }
        Ok(spec)
    }
}

/// Per-partition fault accounting: messages consumed, cloned, or held
/// by the plane. Data-determined, so thread-count-invariant; summing
/// over partitions gives the world totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped by a sever window or a drop draw.
    pub dropped_by_fault: u64,
    /// Messages duplicated (each counts the extra copy once).
    pub duplicated: u64,
    /// Messages held by a reorder draw.
    pub reordered: u64,
    /// Messages held by a delay draw.
    pub delayed: u64,
}

impl FaultCounts {
    /// Component-wise sum (partition aggregation).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.dropped_by_fault += other.dropped_by_fault;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.delayed += other.delayed;
    }
}

/// What the plane decided for one message.
pub(crate) enum Fate {
    /// Deliver normally.
    Deliver,
    /// Consume silently.
    Drop,
    /// Deliver now *and* enqueue a copy that arrives one round later.
    Duplicate,
    /// Hold for `extra` rounds beyond normal latency; `reorder` only
    /// picks the counter it is charged to.
    Hold {
        /// Extra rounds of delay.
        extra: u32,
        /// Charged to `reordered` instead of `delayed`.
        reorder: bool,
    },
}

/// The armed per-partition fault plane: the spec, the base round it
/// was armed at, this partition's stream states, counters, and held
/// messages. Fully public because it *is* the checkpoint shape —
/// [`PartitionState`](crate::PartitionState) carries it verbatim.
#[derive(Clone, Debug)]
pub struct FaultPlane<M> {
    /// The (normalized) schedule.
    pub spec: FaultSpec,
    /// Absolute round the plane was armed at; windows are relative to
    /// this.
    pub base: u64,
    /// This partition's index (0 for the serial world).
    pub me: u32,
    /// Per-source-partition stream states for receiver-side draws,
    /// grown on demand (entry `i` is a pure function of
    /// `(seed, me, i)`, so growth timing cannot matter).
    pub cross: Vec<u64>,
    /// Stream state for sender-side draws (intra-partition and group
    /// classes).
    pub local: u64,
    /// Monotone insertion counter for held messages (stable ordering
    /// key among equal release rounds).
    pub pending_seq: u64,
    /// Fault accounting.
    pub counts: FaultCounts,
    /// Held messages, sorted by `(release round, insertion seq)`:
    /// entries whose release round has come are moved into channels at
    /// the top of the next round.
    pub pending: Vec<(u64, u64, NodeId, M)>,
}

impl<M> FaultPlane<M> {
    /// Arms a plane for partition `me` at absolute round `base`.
    pub(crate) fn new(mut spec: FaultSpec, base: u64, me: u32) -> Self {
        spec.normalize();
        let local = stream_seed(spec.seed, me as u64, u64::MAX);
        FaultPlane {
            spec,
            base,
            me,
            cross: Vec::new(),
            local,
            pending_seq: 0,
            counts: FaultCounts::default(),
            pending: Vec::new(),
        }
    }

    /// Round relative to arming (pre-arming rounds clamp to 0, where
    /// no sensible window is active since windows start at ≥ 0 — specs
    /// wanting an immediately-active window use `from_round = 0`).
    #[inline]
    fn rel(&self, round: u64) -> u64 {
        round.saturating_sub(self.base)
    }

    /// Whether any active sever window cuts the edge `a – b`.
    #[inline]
    pub(crate) fn severed(&self, round: u64, a: u64, b: u64) -> bool {
        if self.spec.severs.is_empty() {
            return false;
        }
        let rel = self.rel(round);
        self.spec
            .severs
            .iter()
            .any(|s| s.from_round <= rel && rel < s.to_round && (s.contains(a) != s.contains(b)))
    }

    /// Index of the first active sever window containing `id`, if any —
    /// the hook backends use to turn a partition into a supervisor
    /// failover (rising-edge detection is the backend's job).
    pub(crate) fn active_sever_containing(&self, round: u64, id: u64) -> Option<usize> {
        let rel = self.rel(round);
        self.spec
            .severs
            .iter()
            .position(|s| s.from_round <= rel && rel < s.to_round && s.contains(id))
    }

    /// Sender-side fate for a message `from → to` (`local_dest`: the
    /// destination is hosted by this partition). Draws from the local
    /// stream.
    #[inline]
    pub(crate) fn sender_fate(&mut self, round: u64, from: u64, to: u64, local_dest: bool) -> Fate {
        if self.spec.rules.is_empty() {
            return Fate::Deliver;
        }
        let rel = self.rel(round);
        let me = self.me;
        let rule = self.spec.rules.iter().find(|r| {
            if rel < r.from_round || rel >= r.to_round {
                return false;
            }
            match &r.link {
                LinkClass::Group(g) => {
                    (g.binary_search(&from).is_ok()) != (g.binary_search(&to).is_ok())
                }
                LinkClass::All => local_dest,
                LinkClass::AnyLocal => local_dest,
                LinkClass::Local { partition } => local_dest && *partition == me,
                LinkClass::AnyCross | LinkClass::Cross { .. } => false,
            }
        });
        match rule {
            Some(r) => fate_from_rule(r, &mut self.local),
            None => Fate::Deliver,
        }
    }

    /// Receiver-side fate for an inbound cross-partition envelope from
    /// partition `src`. Draws from the `src → me` stream.
    #[inline]
    pub(crate) fn cross_fate(&mut self, round: u64, src: u32) -> Fate {
        if self.spec.rules.is_empty() {
            return Fate::Deliver;
        }
        let rel = self.rel(round);
        let me = self.me;
        let rule = self.spec.rules.iter().find(|r| {
            if rel < r.from_round || rel >= r.to_round {
                return false;
            }
            match &r.link {
                LinkClass::All | LinkClass::AnyCross => true,
                LinkClass::Cross { src: s, dst } => *s == src && *dst == me,
                LinkClass::AnyLocal | LinkClass::Local { .. } | LinkClass::Group(_) => false,
            }
        });
        let Some(r) = rule else {
            return Fate::Deliver;
        };
        // Copy the rule's draw fields out before touching `cross` (the
        // rule reference borrows `spec`).
        let (drop, dup, delay, delay_rounds, reorder, reorder_max) = (
            r.drop,
            r.dup,
            r.delay,
            r.delay_rounds,
            r.reorder,
            r.reorder_max,
        );
        let src = src as usize;
        if src >= self.cross.len() {
            let (seed, me) = (self.spec.seed, self.me as u64);
            let old = self.cross.len();
            self.cross.resize(src + 1, 0);
            for (i, slot) in self.cross.iter_mut().enumerate().skip(old) {
                *slot = stream_seed(seed, me, i as u64);
            }
        }
        let state = &mut self.cross[src];
        fate_from_fields(drop, dup, delay, delay_rounds, reorder, reorder_max, state)
    }

    /// Holds a message until `release` (absolute round), keeping the
    /// pending buffer sorted by `(release, insertion seq)`.
    #[inline]
    pub(crate) fn defer(&mut self, release: u64, to: NodeId, msg: M) {
        let seq = self.pending_seq;
        self.pending_seq += 1;
        let at = self
            .pending
            .partition_point(|e| (e.0, e.1) <= (release, seq));
        self.pending.insert(at, (release, seq, to, msg));
    }
}

/// Applies one rule's draw sequence (drop → dup → delay → reorder;
/// first hit wins) against `state`.
#[inline]
fn fate_from_rule(r: &FaultRule, state: &mut u64) -> Fate {
    fate_from_fields(
        r.drop,
        r.dup,
        r.delay,
        r.delay_rounds,
        r.reorder,
        r.reorder_max,
        state,
    )
}

#[inline]
fn fate_from_fields(
    drop: f64,
    dup: f64,
    delay: f64,
    delay_rounds: u32,
    reorder: f64,
    reorder_max: u32,
    state: &mut u64,
) -> Fate {
    if chance(state, drop) {
        return Fate::Drop;
    }
    if chance(state, dup) {
        return Fate::Duplicate;
    }
    if chance(state, delay) {
        return Fate::Hold {
            extra: delay_rounds.max(1),
            reorder: false,
        };
    }
    if chance(state, reorder) {
        return Fate::Hold {
            extra: bounded(state, reorder_max),
            reorder: true,
        };
    }
    Fate::Deliver
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_encoding_round_trips() {
        let spec = FaultSpec {
            seed: 99,
            rules: vec![
                FaultRule {
                    from_round: 5,
                    to_round: 40,
                    link: LinkClass::All,
                    drop: 0.25,
                    dup: 0.0,
                    delay: 0.125,
                    delay_rounds: 3,
                    reorder: 0.0625,
                    reorder_max: 4,
                },
                FaultRule {
                    from_round: 0,
                    to_round: 10,
                    link: LinkClass::Cross { src: 1, dst: 2 },
                    drop: 1.0,
                    dup: 0.0,
                    delay: 0.0,
                    delay_rounds: 1,
                    reorder: 0.0,
                    reorder_max: 1,
                },
                FaultRule {
                    from_round: 2,
                    to_round: 3,
                    link: LinkClass::Group(vec![1, 5, 9]),
                    drop: 0.5,
                    dup: 0.5,
                    delay: 0.0,
                    delay_rounds: 1,
                    reorder: 0.0,
                    reorder_max: 1,
                },
            ],
            severs: vec![Sever {
                from_round: 12,
                to_round: 24,
                group: vec![3, 4],
            }],
        };
        let line = spec.to_line();
        let parsed = FaultSpec::parse_line(&line).expect("parses");
        assert_eq!(parsed, spec);
        // And fractional probabilities with non-finite-binary decimals
        // still round-trip through Display/parse.
        let spec2 = FaultSpec {
            seed: 1,
            rules: vec![FaultRule {
                drop: 0.1,
                ..FaultRule::pass(0, 7, LinkClass::AnyLocal)
            }],
            severs: vec![],
        };
        assert_eq!(FaultSpec::parse_line(&spec2.to_line()).unwrap(), spec2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "nonsense",
            "rule=1..2,all,0,0,0,1,0", // 7 fields
            "rule=1..2,q:3,0,0,0,1,0,1",
            "sever=1..2",
            "seed=x",
            "rule=oops,all,0,0,0,1,0,1",
        ] {
            assert!(FaultSpec::parse_line(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn clamped_probabilities_consume_no_draws() {
        let mut a = 7u64;
        let mut b = 7u64;
        // p=1 drop short-circuits: stream untouched.
        assert!(matches!(
            fate_from_fields(1.0, 0.5, 0.5, 2, 0.5, 3, &mut a),
            Fate::Drop
        ));
        assert_eq!(a, b);
        // all-zero rule: also untouched.
        assert!(matches!(
            fate_from_fields(0.0, 0.0, 0.0, 2, 0.0, 3, &mut a),
            Fate::Deliver
        ));
        assert_eq!(a, b);
        // a real draw moves the stream.
        let _ = fate_from_fields(0.5, 0.0, 0.0, 1, 0.0, 1, &mut a);
        assert_ne!(a, b);
        let _ = chance(&mut b, 0.5);
        assert_eq!(a, b, "drop draw is exactly one stream step");
    }

    #[test]
    fn sever_cuts_only_boundary_edges_inside_window() {
        let spec = FaultSpec {
            seed: 0,
            rules: vec![],
            severs: vec![Sever {
                from_round: 10,
                to_round: 20,
                group: vec![1, 2],
            }],
        };
        let plane: FaultPlane<()> = FaultPlane::new(spec, 100, 0);
        // window: absolute rounds 110..120
        assert!(plane.severed(110, 1, 5));
        assert!(plane.severed(119, 5, 2));
        assert!(!plane.severed(110, 1, 2), "inside the group stays connected");
        assert!(!plane.severed(110, 5, 6), "outside the group stays connected");
        assert!(!plane.severed(109, 1, 5), "window not yet open");
        assert!(!plane.severed(120, 1, 5), "window healed (exclusive end)");
        assert_eq!(plane.active_sever_containing(110, 1), Some(0));
        assert_eq!(plane.active_sever_containing(110, 5), None);
        assert_eq!(plane.active_sever_containing(121, 1), None);
    }

    #[test]
    fn stream_seeds_differ_per_link() {
        let s01 = stream_seed(7, 0, 1);
        let s10 = stream_seed(7, 1, 0);
        let s00 = stream_seed(7, 0, 0);
        let local0 = stream_seed(7, 0, u64::MAX);
        let local1 = stream_seed(7, 1, u64::MAX);
        let all = [s01, s10, s00, local0, local1];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn defer_keeps_release_order_stable() {
        let mut plane: FaultPlane<u8> = FaultPlane::new(FaultSpec::default(), 0, 0);
        plane.defer(5, NodeId(1), b'a');
        plane.defer(3, NodeId(2), b'b');
        plane.defer(5, NodeId(3), b'c');
        plane.defer(3, NodeId(4), b'd');
        let order: Vec<(u64, u8)> = plane.pending.iter().map(|e| (e.0, e.3)).collect();
        assert_eq!(order, vec![(3, b'b'), (3, b'd'), (5, b'a'), (5, b'c')]);
    }
}
