//! Message accounting for experiments.

use crate::NodeId;
use std::collections::BTreeMap;

/// Cumulative message counters maintained by the [`World`](crate::World).
///
/// Experiments measure *rates* by cloning the metrics before a window and
/// calling [`Metrics::diff`] after it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages handed to the transport (including ones later dropped
    /// because the destination crashed).
    pub sent_total: u64,
    /// Messages delivered to a node's handler.
    pub delivered_total: u64,
    /// Messages consumed without any action because the destination does
    /// not exist / has crashed (paper §3.3 semantics).
    pub dropped: u64,
    /// Rounds executed (round mode and chaos mode each count 1 per call).
    pub rounds: u64,
    /// Sent messages by protocol-defined kind.
    pub sent_by_kind: BTreeMap<&'static str, u64>,
    /// Sent messages per sender.
    pub sent_by_node: BTreeMap<NodeId, u64>,
    /// Delivered messages per receiver.
    pub received_by_node: BTreeMap<NodeId, u64>,
}

impl Metrics {
    /// Counter delta `self − earlier` (all counters are monotone).
    pub fn diff(&self, earlier: &Metrics) -> Metrics {
        let map_diff = |a: &BTreeMap<&'static str, u64>, b: &BTreeMap<&'static str, u64>| {
            a.iter()
                .map(|(k, v)| (*k, v - b.get(k).copied().unwrap_or(0)))
                .filter(|&(_, v)| v > 0)
                .collect()
        };
        let node_diff = |a: &BTreeMap<NodeId, u64>, b: &BTreeMap<NodeId, u64>| {
            a.iter()
                .map(|(k, v)| (*k, v - b.get(k).copied().unwrap_or(0)))
                .filter(|&(_, v)| v > 0)
                .collect()
        };
        Metrics {
            sent_total: self.sent_total - earlier.sent_total,
            delivered_total: self.delivered_total - earlier.delivered_total,
            dropped: self.dropped - earlier.dropped,
            rounds: self.rounds - earlier.rounds,
            sent_by_kind: map_diff(&self.sent_by_kind, &earlier.sent_by_kind),
            sent_by_node: node_diff(&self.sent_by_node, &earlier.sent_by_node),
            received_by_node: node_diff(&self.received_by_node, &earlier.received_by_node),
        }
    }

    /// Messages of `kind` sent so far.
    pub fn kind(&self, kind: &str) -> u64 {
        self.sent_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Messages sent by `node` so far.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.sent_by_node.get(&node).copied().unwrap_or(0)
    }

    /// Messages received by `node` so far.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.received_by_node.get(&node).copied().unwrap_or(0)
    }

    pub(crate) fn note_sent(&mut self, from: NodeId, kind: &'static str) {
        self.sent_total += 1;
        *self.sent_by_kind.entry(kind).or_insert(0) += 1;
        *self.sent_by_node.entry(from).or_insert(0) += 1;
    }

    pub(crate) fn note_delivered(&mut self, to: NodeId) {
        self.delivered_total += 1;
        *self.received_by_node.entry(to).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_subtracts() {
        let mut early = Metrics::default();
        early.note_sent(NodeId(1), "a");
        let mut late = early.clone();
        late.note_sent(NodeId(1), "a");
        late.note_sent(NodeId(2), "b");
        late.note_delivered(NodeId(2));
        late.rounds = 3;
        let d = late.diff(&early);
        assert_eq!(d.sent_total, 2);
        assert_eq!(d.kind("a"), 1);
        assert_eq!(d.kind("b"), 1);
        assert_eq!(d.sent_by(NodeId(1)), 1);
        assert_eq!(d.sent_by(NodeId(2)), 1);
        assert_eq!(d.received_by(NodeId(2)), 1);
        assert_eq!(d.rounds, 3);
        assert_eq!(d.kind("zzz"), 0);
    }
}
