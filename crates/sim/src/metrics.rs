//! Message accounting for experiments.
//!
//! Storage is flat and index-addressed so the engine's hot path never
//! touches a tree: message kinds are interned once into a small array
//! (`&'static str` pointer-equality fast path), and per-node counters
//! live in `Vec`s addressed by a stable per-id index the `World` caches
//! in each node's slot. The read API (totals, [`Metrics::kind`],
//! [`Metrics::sent_by`], [`Metrics::received_by`], [`Metrics::diff`])
//! is unchanged from the `BTreeMap`-backed version it replaced.

use crate::fx::FxBuildHasher;
use crate::NodeId;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Mutex, OnceLock};

/// Cumulative message counters maintained by the [`World`](crate::World).
///
/// Experiments measure *rates* by cloning the metrics before a window
/// and calling [`Metrics::diff`] after it.
///
/// Equality is *canonical*: two metrics compare equal iff every total
/// and every non-zero per-kind / per-node counter agrees, regardless of
/// internal interning order.
#[derive(Clone, Default)]
pub struct Metrics {
    /// Messages handed to the transport (including ones later dropped
    /// because the destination crashed).
    pub sent_total: u64,
    /// Messages delivered to a node's handler.
    pub delivered_total: u64,
    /// Messages consumed without any action because the destination does
    /// not exist / has crashed (paper §3.3 semantics).
    pub dropped: u64,
    /// Rounds executed (round mode and chaos mode each count 1 per call).
    pub rounds: u64,
    /// Interned kind names, parallel to `kind_counts`.
    kind_names: Vec<&'static str>,
    kind_counts: Vec<u64>,
    /// Interned node ids, parallel to `node_sent` / `node_received`.
    /// Indices are stable for the lifetime of the world — crashed ids
    /// keep their counters and rejoins continue them (same as the old
    /// map-keyed semantics).
    node_ids: Vec<NodeId>,
    node_sent: Vec<u64>,
    node_received: Vec<u64>,
    node_index: HashMap<u64, u32, FxBuildHasher>,
}

impl Metrics {
    /// Counter delta `self − earlier` (all counters are monotone).
    pub fn diff(&self, earlier: &Metrics) -> Metrics {
        let mut d = Metrics {
            sent_total: self.sent_total - earlier.sent_total,
            delivered_total: self.delivered_total - earlier.delivered_total,
            dropped: self.dropped - earlier.dropped,
            rounds: self.rounds - earlier.rounds,
            ..Metrics::default()
        };
        for (i, &name) in self.kind_names.iter().enumerate() {
            let delta = self.kind_counts[i] - earlier.kind(name);
            if delta > 0 {
                let k = d.kind_index(name);
                d.kind_counts[k as usize] = delta;
            }
        }
        for (i, &id) in self.node_ids.iter().enumerate() {
            let sent = self.node_sent[i] - earlier.sent_by(id);
            let received = self.node_received[i] - earlier.received_by(id);
            if sent > 0 || received > 0 {
                let n = d.intern_node(id) as usize;
                d.node_sent[n] = sent;
                d.node_received[n] = received;
            }
        }
        d
    }

    /// Messages of `kind` sent so far.
    pub fn kind(&self, kind: &str) -> u64 {
        self.kind_names
            .iter()
            .position(|&k| same_str(k, kind))
            .map_or(0, |i| self.kind_counts[i])
    }

    /// Messages sent by `node` so far.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.node_index
            .get(&node.0)
            .map_or(0, |&i| self.node_sent[i as usize])
    }

    /// Messages received by `node` so far.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.node_index
            .get(&node.0)
            .map_or(0, |&i| self.node_received[i as usize])
    }

    /// Non-zero per-kind counters, sorted by kind name (the iteration
    /// order the old `BTreeMap` field exposed).
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = self
            .kind_names
            .iter()
            .zip(&self.kind_counts)
            .filter(|&(_, &c)| c > 0)
            .map(|(&k, &c)| (k, c))
            .collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Non-zero per-node `(id, sent, received)` counters, sorted by id.
    pub fn by_node(&self) -> Vec<(NodeId, u64, u64)> {
        let mut v: Vec<(NodeId, u64, u64)> = self
            .node_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.node_sent[i] > 0 || self.node_received[i] > 0)
            .map(|(i, &id)| (id, self.node_sent[i], self.node_received[i]))
            .collect();
        v.sort_unstable_by_key(|&(id, _, _)| id);
        v
    }

    /// Index of `kind`, interning it on first sight. The linear scan
    /// with a pointer-equality fast path beats any map for the handful
    /// of distinct `&'static str` kinds a protocol defines.
    #[inline]
    pub(crate) fn kind_index(&mut self, kind: &'static str) -> u16 {
        for (i, &k) in self.kind_names.iter().enumerate() {
            if same_str(k, kind) {
                return i as u16;
            }
        }
        assert!(self.kind_names.len() < u16::MAX as usize, "too many kinds");
        self.kind_names.push(kind);
        self.kind_counts.push(0);
        (self.kind_names.len() - 1) as u16
    }

    /// Stable per-id counter index, interning `id` on first sight.
    #[inline]
    pub(crate) fn intern_node(&mut self, id: NodeId) -> u32 {
        if let Some(&i) = self.node_index.get(&id.0) {
            return i;
        }
        let i = self.node_ids.len() as u32;
        self.node_ids.push(id);
        self.node_sent.push(0);
        self.node_received.push(0);
        self.node_index.insert(id.0, i);
        i
    }

    /// Hot-path send accounting: both indices already resolved.
    #[inline]
    pub(crate) fn note_sent_at(&mut self, from: u32, kind: &'static str) {
        self.sent_total += 1;
        let k = self.kind_index(kind);
        self.kind_counts[k as usize] += 1;
        self.node_sent[from as usize] += 1;
    }

    /// Cold-path send accounting (external injection: the sender id may
    /// never have been a live node).
    pub(crate) fn note_sent(&mut self, from: NodeId, kind: &'static str) {
        let i = self.intern_node(from);
        self.note_sent_at(i, kind);
    }

    /// Hot-path delivery accounting.
    #[inline]
    pub(crate) fn note_delivered_at(&mut self, to: u32) {
        self.delivered_total += 1;
        self.node_received[to as usize] += 1;
    }

    /// Exports the counters in portable, owner-independent form
    /// (checkpoint/restore). Kinds and nodes are emitted in **intern
    /// order**, not sorted: [`Metrics::import`] rebuilds the same
    /// internal index assignment, so a restored world's hot-path
    /// `note_*_at` indices keep meaning exactly what they meant.
    pub fn export(&self) -> MetricsState {
        MetricsState {
            sent_total: self.sent_total,
            delivered_total: self.delivered_total,
            dropped: self.dropped,
            rounds: self.rounds,
            kinds: self
                .kind_names
                .iter()
                .zip(&self.kind_counts)
                .map(|(&k, &c)| (k.to_string(), c))
                .collect(),
            nodes: self
                .node_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, self.node_sent[i], self.node_received[i]))
                .collect(),
        }
    }

    /// Rebuilds metrics from an exported state. The inverse of
    /// [`Metrics::export`]: `m.export()` then `Metrics::import` yields
    /// metrics equal to `m` with identical intern order. Kind names
    /// come back as `&'static str` via a process-wide leak-dedup pool
    /// (bounded by the number of distinct kind names ever restored —
    /// for a fixed protocol, a handful).
    pub fn import(state: &MetricsState) -> Metrics {
        let mut m = Metrics {
            sent_total: state.sent_total,
            delivered_total: state.delivered_total,
            dropped: state.dropped,
            rounds: state.rounds,
            ..Metrics::default()
        };
        for (name, count) in &state.kinds {
            let k = m.kind_index(intern_static(name)) as usize;
            m.kind_counts[k] = *count;
        }
        for &(id, sent, received) in &state.nodes {
            let n = m.intern_node(id) as usize;
            m.node_sent[n] = sent;
            m.node_received[n] = received;
        }
        m
    }

    /// Adds every counter of `other` into `self` (kinds and node ids are
    /// interned on first sight). Used to aggregate per-partition metrics
    /// into a whole-world view; note that `rounds` is summed like every
    /// other counter — an aggregator whose partitions all step each
    /// round overwrites it with the world round count afterwards.
    pub fn merge(&mut self, other: &Metrics) {
        self.sent_total += other.sent_total;
        self.delivered_total += other.delivered_total;
        self.dropped += other.dropped;
        self.rounds += other.rounds;
        for (i, &name) in other.kind_names.iter().enumerate() {
            let k = self.kind_index(name) as usize;
            self.kind_counts[k] += other.kind_counts[i];
        }
        for (i, &id) in other.node_ids.iter().enumerate() {
            let n = self.intern_node(id) as usize;
            self.node_sent[n] += other.node_sent[i];
            self.node_received[n] += other.node_received[i];
        }
    }
}

/// Portable, owner-independent form of [`Metrics`] — the
/// checkpoint/restore wire shape. Kinds and nodes are in intern order
/// (see [`Metrics::export`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsState {
    /// Messages handed to the transport.
    pub sent_total: u64,
    /// Messages delivered to a handler.
    pub delivered_total: u64,
    /// Messages consumed without action (§3.3).
    pub dropped: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// `(kind name, count)` in intern order (zero counts included).
    pub kinds: Vec<(String, u64)>,
    /// `(id, sent, received)` in intern order (zero counters included).
    pub nodes: Vec<(NodeId, u64, u64)>,
}

/// Process-wide leak-dedup pool turning restored kind-name strings back
/// into `&'static str` (the representation the hot-path interner
/// requires). Each distinct name leaks exactly once, process-wide.
fn intern_static(name: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = pool.lock().expect("kind-name pool poisoned");
    if let Some(&existing) = guard.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Fat-pointer fast path (address **and** length — a bare `as_ptr`
/// compare would let a prefix slice of an interned kind match it),
/// then content equality for distinct-instance `&'static str`s.
#[inline]
fn same_str(a: &str, b: &str) -> bool {
    std::ptr::eq(a, b) || a == b
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.sent_total == other.sent_total
            && self.delivered_total == other.delivered_total
            && self.dropped == other.dropped
            && self.rounds == other.rounds
            && self.by_kind() == other.by_kind()
            && self.by_node() == other.by_node()
    }
}

impl Eq for Metrics {}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("sent_total", &self.sent_total)
            .field("delivered_total", &self.delivered_total)
            .field("dropped", &self.dropped)
            .field("rounds", &self.rounds)
            .field("by_kind", &self.by_kind())
            .field("by_node", &self.by_node())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_subtracts() {
        let mut early = Metrics::default();
        early.note_sent(NodeId(1), "a");
        let mut late = early.clone();
        late.note_sent(NodeId(1), "a");
        late.note_sent(NodeId(2), "b");
        let i2 = late.intern_node(NodeId(2));
        late.note_delivered_at(i2);
        late.rounds = 3;
        let d = late.diff(&early);
        assert_eq!(d.sent_total, 2);
        assert_eq!(d.kind("a"), 1);
        assert_eq!(d.kind("b"), 1);
        assert_eq!(d.sent_by(NodeId(1)), 1);
        assert_eq!(d.sent_by(NodeId(2)), 1);
        assert_eq!(d.received_by(NodeId(2)), 1);
        assert_eq!(d.rounds, 3);
        assert_eq!(d.kind("zzz"), 0);
    }

    #[test]
    fn equality_is_canonical() {
        // Same logical content, different interning order.
        let mut a = Metrics::default();
        a.note_sent(NodeId(1), "x");
        a.note_sent(NodeId(2), "y");
        let mut b = Metrics::default();
        b.note_sent(NodeId(2), "y");
        b.note_sent(NodeId(1), "x");
        assert_eq!(a, b);
        b.note_sent(NodeId(1), "x");
        assert_ne!(a, b);
    }

    #[test]
    fn zero_counters_do_not_leak_into_views() {
        let mut m = Metrics::default();
        m.intern_node(NodeId(5)); // interned by add_node, never trafficked
        m.kind_index("quiet");
        assert!(m.by_kind().is_empty());
        assert!(m.by_node().is_empty());
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn kind_lookup_survives_distinct_str_instances() {
        let mut m = Metrics::default();
        m.note_sent(NodeId(0), "token");
        // Same content, (potentially) different pointer.
        let probe = String::from("token");
        assert_eq!(m.kind(&probe), 1);
    }

    #[test]
    fn kind_lookup_rejects_prefix_slice_of_interned_kind() {
        let mut m = Metrics::default();
        m.note_sent(NodeId(0), "rumor");
        // Shares the interned str's start address but not its length —
        // must not match via the pointer fast path.
        let interned = "rumor";
        assert_eq!(m.kind(&interned[..3]), 0);
        assert_eq!(m.kind("rum"), 0);
    }

    #[test]
    fn crash_then_rejoin_continues_counters() {
        let mut m = Metrics::default();
        let i = m.intern_node(NodeId(7));
        m.note_sent_at(i, "a");
        // Rejoin re-interns and lands on the same index.
        assert_eq!(m.intern_node(NodeId(7)), i);
        m.note_sent_at(i, "a");
        assert_eq!(m.sent_by(NodeId(7)), 2);
    }
}
