//! Test support: run a protocol handler against a detached [`Ctx`] and
//! capture its outbound messages, without building a whole [`crate::World`].

use crate::engine::{detached_ctx_run, Ctx, NodeId};

/// Runs `f` with a context for node `me` backed by a seeded RNG; returns
/// every `(destination, message)` pair the handler sent.
pub fn run_handler<M>(me: NodeId, seed: u64, f: impl FnOnce(&mut Ctx<'_, M>)) -> Vec<(NodeId, M)> {
    detached_ctx_run(me, seed, f)
}
