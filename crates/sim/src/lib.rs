//! # skippub-sim
//!
//! A deterministic, seeded simulator for the paper's system model (§1.1):
//!
//! * every node has a **channel** holding an arbitrary finite number of
//!   in-flight messages;
//! * delivery is **reliable but unordered** (non-FIFO) with unbounded
//!   finite delay — modelled by random-order draining plus, in chaos mode,
//!   random per-message holding with a forced-delivery age bound (fair
//!   message receipt);
//! * every node has a periodic `Timeout` action executed **weakly fairly**;
//! * channels may start with **corrupted messages** and node variables may
//!   start with arbitrary values — adversarial initial states are inputs,
//!   not accidents;
//! * nodes may **crash without warning**: messages to a crashed node are
//!   consumed without invoking any action (§3.3).
//!
//! Protocols implement [`Protocol`] as pure state machines; the same state
//! machines are also driven by the threaded runtime in `skippub-net`, so
//! simulated and concurrent executions cannot diverge semantically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod faults;
mod fx;
mod metrics;
mod partitioned;
mod state;
pub mod testing;
mod world;

pub use engine::{ChaosConfig, Ctx, DirtyTable, Envelope, NodeId, Protocol};
pub use faults::{FaultCounts, FaultPlane, FaultRule, FaultSpec, LinkClass, Sever};
pub use metrics::{Metrics, MetricsState};
pub use partitioned::{NodeView, PartitionedWorld};
pub use state::{NodeState, PartitionState, PartitionedState, WorldState};
pub use world::World;
