//! The simulated world: nodes, channels, schedulers, crash injection.
//!
//! # Engine layout
//!
//! Nodes live in a **slab**: a dense `Vec` of slots plus an id → slot
//! hash map (deterministic FxHash) and a free list. Crashes tombstone
//! the slot; rejoins reuse free slots. Message delivery, routing, and
//! timeout firing therefore cost one O(1) map probe + array index
//! instead of the `BTreeMap` walk the previous engine paid per message.
//!
//! # Zero-allocation invariant
//!
//! Steady-state rounds perform **no heap allocation in the engine**:
//! the activation order, each node's drained inbox, the chaos `kept`
//! buffer, and every handler outbox are reusable scratch buffers owned
//! by the [`World`], rotated with `mem::take`/`mem::swap` so their
//! capacities persist across rounds. (Protocol handlers may of course
//! still allocate in their own state.) The `engine_rounds_do_not_grow`
//! test and the `sim_engine` benches in `skippub-bench` guard this.
//!
//! # Determinism
//!
//! All randomness flows through one seeded [`StdRng`]; the slab engine
//! consumes draws in exactly the order the original `BTreeMap` engine
//! did (activation shuffle over id-sorted nodes, inbox shuffle, chaos
//! delivery draws, handler draws), so a seed reproduces byte-identical
//! [`Metrics`] across engine versions — see
//! `tests/determinism_fixtures.rs`.

use crate::fx::FxBuildHasher;
use crate::Metrics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::mem;

/// Unique node identifier (`v.id ∈ N` in the paper). The protocol layer
/// reserves an ID for the supervisor; the simulator treats all nodes
/// uniformly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine driven by the world.
///
/// Handlers receive a [`Ctx`] for sending messages and drawing randomness;
/// they must not block and must not communicate through any other channel
/// (the paper's model: local variables + messages only).
pub trait Protocol {
    /// The wire message type.
    type Msg: Clone;

    /// Handles one delivered message (the remote action call
    /// `⟨label⟩(⟨parameters⟩)`).
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, msg: Self::Msg);

    /// The periodic `Timeout` action.
    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Classifies a message for metrics (e.g. `"GetConfiguration"`).
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }
}

/// Handler-side context: the only way a node interacts with the world.
pub struct Ctx<'a, M> {
    me: NodeId,
    round: u64,
    out: &'a mut Vec<(NodeId, M)>,
    rng: &'a mut StdRng,
}

impl<M> Ctx<'_, M> {
    /// The executing node's own ID.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current round number (diagnostics only — protocols must not branch
    /// on global time, but logging it is harmless).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` to `to` (puts it into `to`'s channel).
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Bernoulli draw from the world's seeded RNG.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.random_bool(p)
        }
    }

    /// Uniform draw from `0..n` (`n > 0`).
    #[inline]
    pub fn random_range(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }
}

/// Backing for [`crate::testing::run_handler`]: materializes a detached
/// context (contexts have private fields by design — protocol crates can
/// only obtain one from a world or from this test hook).
pub(crate) fn detached_ctx_run<M>(
    me: NodeId,
    seed: u64,
    f: impl FnOnce(&mut Ctx<'_, M>),
) -> Vec<(NodeId, M)> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctx = Ctx {
        me,
        round: 0,
        out: &mut out,
        rng: &mut rng,
    };
    f(&mut ctx);
    out
}

/// Chaos-scheduler tuning.
///
/// Together these knobs realize the paper's §1.1/§3.3 channel model in
/// its adversarial form: delivery is reliable but unordered with
/// unbounded *finite* delay. `delivery_prob` randomizes per-message
/// delay, `max_age` enforces **fair message receipt** (no message stays
/// in a channel forever — once its age exceeds the bound it is
/// force-delivered), and `timeout_prob` realizes the weakly fair
/// periodic `Timeout` action (over infinitely many rounds every node
/// fires infinitely often).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Probability an in-flight message is delivered this round.
    pub delivery_prob: f64,
    /// Probability a node fires its `Timeout` this round.
    pub timeout_prob: f64,
    /// Forced delivery after this many rounds in flight (fair receipt).
    pub max_age: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            delivery_prob: 0.5,
            timeout_prob: 0.5,
            max_age: 8,
        }
    }
}

/// One live node: its protocol state, in-flight channel, and the
/// metrics index cached so hot-path accounting never hashes.
struct Slot<P: Protocol> {
    id: NodeId,
    /// Stable per-id metrics index (survives crash + rejoin).
    midx: u32,
    proto: P,
    /// In-flight messages with their age in rounds.
    channel: Vec<(u32, P::Msg)>,
}

/// The simulated distributed system.
///
/// See the crate docs for the slab layout, the
/// zero-allocation invariant, and the determinism contract.
pub struct World<P: Protocol> {
    /// Dense slot storage; `None` is a tombstone left by a crash.
    slots: Vec<Option<Slot<P>>>,
    /// Tombstoned slot indices available for reuse.
    free: Vec<u32>,
    /// Live id → slot index (deterministic hashing, O(1) probes).
    slot_of: HashMap<u64, u32, FxBuildHasher>,
    /// Live `(id, slot)` pairs sorted by id — the canonical iteration
    /// order (matches the old `BTreeMap` engine's sorted-key order).
    order: Vec<(u64, u32)>,
    rng: StdRng,
    metrics: Metrics,
    round: u64,
    /// Scratch: shuffled activation order (slot indices).
    scratch_order: Vec<u32>,
    /// Scratch: the inbox snapshot being drained for one node.
    scratch_inbox: Vec<(u32, P::Msg)>,
    /// Scratch: chaos-mode messages kept in flight for one node.
    scratch_kept: Vec<(u32, P::Msg)>,
    /// Scratch: the outbox handed to each handler invocation.
    scratch_out: Vec<(NodeId, P::Msg)>,
}

impl<P: Protocol> World<P> {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        World {
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: HashMap::default(),
            order: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            round: 0,
            scratch_order: Vec::new(),
            scratch_inbox: Vec::new(),
            scratch_kept: Vec::new(),
            scratch_out: Vec::new(),
        }
    }

    /// Adds a node. Panics on duplicate IDs (a corrupted *world*, unlike a
    /// corrupted protocol state, is a harness bug).
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        assert!(
            !self.slot_of.contains_key(&id.0),
            "duplicate node {id}"
        );
        let midx = self.metrics.intern_node(id);
        let slot = Slot {
            id,
            midx,
            proto,
            channel: Vec::new(),
        };
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(slot);
                s
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.slot_of.insert(id.0, s);
        let pos = self
            .order
            .binary_search_by_key(&id.0, |&(i, _)| i)
            .unwrap_err();
        self.order.insert(pos, (id.0, s));
    }

    /// Crashes a node without warning (§3.3): its state vanishes and all
    /// current and future messages to it are consumed without any action.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(s) = self.slot_of.remove(&id.0) {
            let slot = self.slots[s as usize].take().expect("live slot");
            self.metrics.dropped += slot.channel.len() as u64;
            self.free.push(s);
            let pos = self
                .order
                .binary_search_by_key(&id.0, |&(i, _)| i)
                .expect("live node is ordered");
            self.order.remove(pos);
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slot_of.contains_key(&id.0)
    }

    /// IDs of all live nodes, sorted. Allocates — external convenience
    /// only; the round loop uses the internal order scratch.
    pub fn ids(&self) -> Vec<NodeId> {
        self.order.iter().map(|&(i, _)| NodeId(i)).collect()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    #[inline]
    fn slot(&self, id: NodeId) -> Option<u32> {
        self.slot_of.get(&id.0).copied()
    }

    /// Immutable access to a node's protocol state (checkers, snapshots).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        let s = self.slot(id)?;
        self.slots[s as usize].as_ref().map(|slot| &slot.proto)
    }

    /// Mutable access — used by adversarial initializers to corrupt
    /// protocol variables before a run, and by operations that model local
    /// user input (subscribe/publish calls).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let s = self.slot(id)?;
        self.slots[s as usize].as_mut().map(|slot| &mut slot.proto)
    }

    /// Iterates over `(id, state)` of live nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.order.iter().map(|&(i, s)| {
            let slot = self.slots[s as usize].as_ref().expect("live slot");
            (NodeId(i), &slot.proto)
        })
    }

    /// Injects a message into `to`'s channel from outside the system
    /// (external requests, or corrupted initial channel content).
    pub fn inject(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.note_sent(to, P::msg_kind(&msg));
        match self.slot(to) {
            Some(s) => {
                let slot = self.slots[s as usize].as_mut().expect("live slot");
                slot.channel.push((0, msg));
            }
            None => self.metrics.dropped += 1,
        }
    }

    /// Number of in-flight messages to `id`.
    pub fn channel_len(&self, id: NodeId) -> usize {
        self.slot(id).map_or(0, |s| {
            self.slots[s as usize]
                .as_ref()
                .map_or(0, |slot| slot.channel.len())
        })
    }

    /// Total in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.order
            .iter()
            .map(|&(_, s)| {
                self.slots[s as usize]
                    .as_ref()
                    .map_or(0, |slot| slot.channel.len())
            })
            .sum()
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Lets the harness drive a node as if it acted locally: runs `f` with
    /// the node's state and a context, then routes whatever it sent.
    /// Returns `None` if the node does not exist.
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        let s = self.slot(id)?;
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        let slot = self.slots[s as usize].as_mut().expect("live slot");
        let midx = slot.midx;
        let mut ctx = Ctx {
            me: id,
            round,
            out: &mut out,
            rng: &mut self.rng,
        };
        let r = f(&mut slot.proto, &mut ctx);
        self.route_from(midx, &mut out);
        self.scratch_out = out;
        Some(r)
    }

    /// Routes a drained outbox: one O(1) slot probe per message; the
    /// buffer is left empty for reuse by the caller.
    fn route_from(&mut self, from_midx: u32, out: &mut Vec<(NodeId, P::Msg)>) {
        for (to, msg) in out.drain(..) {
            self.metrics.note_sent_at(from_midx, P::msg_kind(&msg));
            match self.slot_of.get(&to.0) {
                Some(&s) => {
                    let slot = self.slots[s as usize].as_mut().expect("live slot");
                    slot.channel.push((0, msg));
                }
                None => self.metrics.dropped += 1, // crashed / never existed
            }
        }
    }

    /// Delivers one message to the node in slot `s` and routes its sends.
    fn deliver_slot(&mut self, s: u32, msg: P::Msg) {
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        let from_midx = match self.slots[s as usize].as_mut() {
            Some(slot) => {
                self.metrics.note_delivered_at(slot.midx);
                let mut ctx = Ctx {
                    me: slot.id,
                    round,
                    out: &mut out,
                    rng: &mut self.rng,
                };
                slot.proto.on_message(&mut ctx, msg);
                slot.midx
            }
            None => {
                self.metrics.dropped += 1;
                self.scratch_out = out;
                return;
            }
        };
        self.route_from(from_midx, &mut out);
        self.scratch_out = out;
    }

    /// Fires `Timeout` for the node in slot `s` and routes its sends.
    fn fire_timeout_slot(&mut self, s: u32) {
        let mut out = mem::take(&mut self.scratch_out);
        debug_assert!(out.is_empty());
        let round = self.round;
        let from_midx = match self.slots[s as usize].as_mut() {
            Some(slot) => {
                let mut ctx = Ctx {
                    me: slot.id,
                    round,
                    out: &mut out,
                    rng: &mut self.rng,
                };
                slot.proto.on_timeout(&mut ctx);
                slot.midx
            }
            None => {
                self.scratch_out = out;
                return;
            }
        };
        self.route_from(from_midx, &mut out);
        self.scratch_out = out;
    }

    /// Takes the shuffled activation order into the caller's buffer.
    /// Shuffling over id-sorted live nodes keeps the RNG-consumption
    /// order identical to the old engine's `ids()`-then-shuffle.
    fn shuffled_order(&mut self) -> Vec<u32> {
        let mut order = mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(self.order.iter().map(|&(_, s)| s));
        order.shuffle(&mut self.rng);
        order
    }

    /// Moves one node's channel snapshot into the inbox scratch.
    /// `append` (not `swap`) on purpose: the channel keeps its own
    /// capacity, so each node's buffer converges to its personal
    /// high-water mark and stays there — swapping would shuffle
    /// capacities randomly between nodes and re-trigger growth whenever
    /// a traffic burst lands on a buffer that happened to be small.
    /// Returns `None` for a tombstoned slot.
    fn take_inbox(&mut self, s: u32) -> Option<Vec<(u32, P::Msg)>> {
        let mut inbox = mem::take(&mut self.scratch_inbox);
        debug_assert!(inbox.is_empty());
        match self.slots[s as usize].as_mut() {
            Some(slot) => {
                inbox.append(&mut slot.channel);
                Some(inbox)
            }
            None => {
                self.scratch_inbox = inbox;
                None
            }
        }
    }

    /// One **synchronous round** — the paper's §3.3 "timeout interval":
    /// every live node, in random order, first processes (in random
    /// order) all messages that were in its channel when it was
    /// activated, then executes `Timeout` exactly once. Messages a node
    /// sends to itself while processing are handled next round.
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub fn run_round(&mut self) {
        self.round += 1;
        let order = self.shuffled_order();
        for &s in &order {
            let Some(mut inbox) = self.take_inbox(s) else {
                continue;
            };
            inbox.shuffle(&mut self.rng);
            for (_, msg) in inbox.drain(..) {
                self.deliver_slot(s, msg);
            }
            self.scratch_inbox = inbox;
            self.fire_timeout_slot(s);
        }
        self.scratch_order = order;
        self.metrics.rounds += 1;
    }

    /// One **chaos round**: every node, in random order, delivers a
    /// random subset of its channel — each message independently with
    /// probability [`ChaosConfig::delivery_prob`], *forced* once its age
    /// exceeds [`ChaosConfig::max_age`] (the paper's fair message
    /// receipt: unbounded but finite delay) — and fires `Timeout` with
    /// probability [`ChaosConfig::timeout_prob`] (weak fairness comes
    /// from infinitely many rounds).
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub fn run_chaos_round(&mut self, cfg: ChaosConfig) {
        self.round += 1;
        let order = self.shuffled_order();
        for &s in &order {
            let Some(mut inbox) = self.take_inbox(s) else {
                continue;
            };
            inbox.shuffle(&mut self.rng);
            let mut kept = mem::take(&mut self.scratch_kept);
            debug_assert!(kept.is_empty());
            for (age, msg) in inbox.drain(..) {
                let force = age >= cfg.max_age;
                if force || self.rng.random_bool(cfg.delivery_prob) {
                    self.deliver_slot(s, msg);
                } else {
                    kept.push((age + 1, msg));
                }
            }
            // Keep undelivered messages (new sends may have arrived).
            match self.slots[s as usize].as_mut() {
                Some(slot) => slot.channel.append(&mut kept),
                None => {
                    self.metrics.dropped += kept.len() as u64;
                    kept.clear();
                }
            }
            self.scratch_kept = kept;
            self.scratch_inbox = inbox;
            if self.rng.random_bool(cfg.timeout_prob) {
                self.fire_timeout_slot(s);
            }
        }
        self.scratch_order = order;
        self.metrics.rounds += 1;
    }

    /// Runs synchronous rounds until `pred(self)` holds or `max_rounds`
    /// elapse; returns the number of rounds executed and whether the
    /// predicate held.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_round();
        }
        (max_rounds, pred(self))
    }

    /// Chaos-mode variant of [`World::run_until`].
    pub fn run_chaos_until(
        &mut self,
        cfg: ChaosConfig,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_chaos_round(cfg);
        }
        (max_rounds, pred(self))
    }

    /// Capacity currently reserved by the engine's scratch buffers —
    /// `(order, inbox, kept, out)`. Test hook for the zero-allocation
    /// invariant: steady-state rounds must not grow these.
    #[doc(hidden)]
    pub fn scratch_capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.scratch_order.capacity(),
            self.scratch_inbox.capacity(),
            self.scratch_kept.capacity(),
            self.scratch_out.capacity(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: counts pings, forwards a token around a fixed ring.
    #[derive(Clone)]
    struct Toy {
        next: NodeId,
        tokens_seen: u64,
        pings_seen: u64,
        timeouts: u64,
    }

    #[derive(Clone, Debug)]
    enum ToyMsg {
        Token(u32),
        Ping,
    }

    impl Protocol for Toy {
        type Msg = ToyMsg;

        fn on_message(&mut self, ctx: &mut Ctx<'_, ToyMsg>, msg: ToyMsg) {
            match msg {
                ToyMsg::Token(ttl) => {
                    self.tokens_seen += 1;
                    if ttl > 0 {
                        ctx.send(self.next, ToyMsg::Token(ttl - 1));
                    }
                }
                ToyMsg::Ping => self.pings_seen += 1,
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Ctx<'_, ToyMsg>) {
            self.timeouts += 1;
        }

        fn msg_kind(msg: &ToyMsg) -> &'static str {
            match msg {
                ToyMsg::Token(_) => "token",
                ToyMsg::Ping => "ping",
            }
        }
    }

    fn ring_world(n: u64, seed: u64) -> World<Toy> {
        let mut w = World::new(seed);
        for i in 0..n {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % n),
                    tokens_seen: 0,
                    pings_seen: 0,
                    timeouts: 0,
                },
            );
        }
        w
    }

    #[test]
    fn round_mode_is_deterministic() {
        let run = |seed| {
            let mut w = ring_world(8, seed);
            w.inject(NodeId(0), ToyMsg::Token(100));
            for _ in 0..30 {
                w.run_round();
            }
            let m = w.metrics().clone();
            (m.sent_total, m.delivered_total)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn token_travels_full_distance() {
        let mut w = ring_world(4, 1);
        w.inject(NodeId(0), ToyMsg::Token(10));
        for _ in 0..40 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 11, "token must be delivered exactly ttl+1 times");
        assert_eq!(w.metrics().kind("token"), 11);
    }

    #[test]
    fn timeouts_fire_every_round() {
        let mut w = ring_world(3, 2);
        for _ in 0..10 {
            w.run_round();
        }
        for (_, t) in w.iter() {
            assert_eq!(t.timeouts, 10);
        }
        assert_eq!(w.metrics().rounds, 10);
    }

    #[test]
    fn chaos_mode_eventually_delivers_everything() {
        let mut w = ring_world(6, 3);
        for _ in 0..20 {
            w.inject(NodeId(2), ToyMsg::Ping);
        }
        let cfg = ChaosConfig {
            delivery_prob: 0.2,
            timeout_prob: 0.3,
            max_age: 5,
        };
        let (_, done) = w.run_chaos_until(cfg, 200, |w| {
            w.node(NodeId(2)).map(|t| t.pings_seen) == Some(20)
        });
        assert!(done, "fair receipt must deliver all pings");
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn crash_consumes_messages_silently() {
        let mut w = ring_world(3, 4);
        w.crash(NodeId(1));
        assert!(!w.is_alive(NodeId(1)));
        w.inject(NodeId(1), ToyMsg::Ping);
        let before = w.metrics().dropped;
        assert!(before >= 1);
        // Token routed through the crashed node dies there.
        w.inject(NodeId(0), ToyMsg::Token(5));
        for _ in 0..10 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(
            total, 1,
            "only node 0 sees the token before it hits the crash"
        );
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn with_node_routes_sends() {
        let mut w = ring_world(2, 5);
        w.with_node(NodeId(0), |_t, ctx| {
            ctx.send(NodeId(1), ToyMsg::Ping);
            assert_eq!(ctx.me(), NodeId(0));
        })
        .unwrap();
        assert_eq!(w.channel_len(NodeId(1)), 1);
        assert!(w.with_node(NodeId(99), |_, _| ()).is_none());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut w = ring_world(4, 6);
        let (rounds, ok) = w.run_until(50, |w| w.round() >= 7);
        assert!(ok);
        assert_eq!(rounds, 7);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_add_panics() {
        let mut w = ring_world(2, 7);
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(0),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
    }

    #[test]
    fn rejoin_after_crash_allowed() {
        let mut w = ring_world(2, 8);
        w.crash(NodeId(0));
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(1),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
        assert!(w.is_alive(NodeId(0)));
    }

    #[test]
    fn rejoin_reuses_tombstoned_slot_and_continues_metrics() {
        let mut w = ring_world(3, 9);
        w.inject(NodeId(1), ToyMsg::Ping);
        w.run_round();
        let sent_before = w.metrics().sent_by(NodeId(1));
        w.crash(NodeId(1));
        w.add_node(
            NodeId(1),
            Toy {
                next: NodeId(2),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
        // Same slot count as before the crash: tombstone was reused.
        assert_eq!(w.len(), 3);
        w.inject(NodeId(1), ToyMsg::Ping);
        w.run_round();
        assert_eq!(w.node(NodeId(1)).unwrap().pings_seen, 1);
        // Per-id counters continued, not reset.
        assert!(w.metrics().sent_by(NodeId(1)) >= sent_before);
    }

    #[test]
    fn scratch_capacities_survive_rounds() {
        // The full zero-allocation invariant is asserted with a counting
        // allocator in tests/zero_alloc.rs; here just check the scratch
        // buffers exist and hold their capacity across empty rounds.
        let mut w = ring_world(16, 10);
        w.run_round();
        let warmed = w.scratch_capacities();
        assert!(warmed.0 >= 16, "order scratch must hold all nodes");
        for _ in 0..50 {
            w.run_round();
        }
        assert_eq!(w.scratch_capacities(), warmed);
    }
}
