//! The simulated world: nodes, channels, schedulers, crash injection.

use crate::Metrics;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Unique node identifier (`v.id ∈ N` in the paper). The protocol layer
/// reserves an ID for the supervisor; the simulator treats all nodes
/// uniformly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol state machine driven by the world.
///
/// Handlers receive a [`Ctx`] for sending messages and drawing randomness;
/// they must not block and must not communicate through any other channel
/// (the paper's model: local variables + messages only).
pub trait Protocol {
    /// The wire message type.
    type Msg: Clone;

    /// Handles one delivered message (the remote action call
    /// `⟨label⟩(⟨parameters⟩)`).
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, msg: Self::Msg);

    /// The periodic `Timeout` action.
    fn on_timeout(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Classifies a message for metrics (e.g. `"GetConfiguration"`).
    fn msg_kind(_msg: &Self::Msg) -> &'static str {
        "msg"
    }
}

/// Handler-side context: the only way a node interacts with the world.
pub struct Ctx<'a, M> {
    me: NodeId,
    round: u64,
    out: &'a mut Vec<(NodeId, M)>,
    rng: &'a mut StdRng,
}

impl<M> Ctx<'_, M> {
    /// The executing node's own ID.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current round number (diagnostics only — protocols must not branch
    /// on global time, but logging it is harmless).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sends `msg` to `to` (puts it into `to`'s channel).
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Bernoulli draw from the world's seeded RNG.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.random_bool(p)
        }
    }

    /// Uniform draw from `0..n` (`n > 0`).
    #[inline]
    pub fn random_range(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }
}

/// Backing for [`crate::testing::run_handler`]: materializes a detached
/// context (contexts have private fields by design — protocol crates can
/// only obtain one from a world or from this test hook).
pub(crate) fn detached_ctx_run<M>(
    me: NodeId,
    seed: u64,
    f: impl FnOnce(&mut Ctx<'_, M>),
) -> Vec<(NodeId, M)> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ctx = Ctx {
        me,
        round: 0,
        out: &mut out,
        rng: &mut rng,
    };
    f(&mut ctx);
    out
}

/// Chaos-scheduler tuning.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Probability an in-flight message is delivered this round.
    pub delivery_prob: f64,
    /// Probability a node fires its `Timeout` this round.
    pub timeout_prob: f64,
    /// Forced delivery after this many rounds in flight (fair receipt).
    pub max_age: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            delivery_prob: 0.5,
            timeout_prob: 0.5,
            max_age: 8,
        }
    }
}

struct Entry<P: Protocol> {
    proto: P,
    /// In-flight messages with their age in rounds.
    channel: Vec<(u32, P::Msg)>,
}

/// The simulated distributed system.
pub struct World<P: Protocol> {
    nodes: BTreeMap<NodeId, Entry<P>>,
    crashed: BTreeSet<NodeId>,
    rng: StdRng,
    metrics: Metrics,
    round: u64,
}

impl<P: Protocol> World<P> {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        World {
            nodes: BTreeMap::new(),
            crashed: BTreeSet::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            round: 0,
        }
    }

    /// Adds a node. Panics on duplicate IDs (a corrupted *world*, unlike a
    /// corrupted protocol state, is a harness bug).
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        let prev = self.nodes.insert(
            id,
            Entry {
                proto,
                channel: Vec::new(),
            },
        );
        assert!(prev.is_none(), "duplicate node {id}");
        self.crashed.remove(&id);
    }

    /// Crashes a node without warning (§3.3): its state vanishes and all
    /// current and future messages to it are consumed without any action.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(entry) = self.nodes.remove(&id) {
            self.metrics.dropped += entry.channel.len() as u64;
        }
        self.crashed.insert(id);
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// IDs of all live nodes.
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's protocol state (checkers, snapshots).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(&id).map(|e| &e.proto)
    }

    /// Mutable access — used by adversarial initializers to corrupt
    /// protocol variables before a run, and by operations that model local
    /// user input (subscribe/publish calls).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(&id).map(|e| &mut e.proto)
    }

    /// Iterates over `(id, state)` of live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes.iter().map(|(id, e)| (*id, &e.proto))
    }

    /// Injects a message into `to`'s channel from outside the system
    /// (external requests, or corrupted initial channel content).
    pub fn inject(&mut self, to: NodeId, msg: P::Msg) {
        self.metrics.note_sent(to, P::msg_kind(&msg));
        match self.nodes.get_mut(&to) {
            Some(e) => e.channel.push((0, msg)),
            None => self.metrics.dropped += 1,
        }
    }

    /// Number of in-flight messages to `id`.
    pub fn channel_len(&self, id: NodeId) -> usize {
        self.nodes.get(&id).map_or(0, |e| e.channel.len())
    }

    /// Total in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.nodes.values().map(|e| e.channel.len()).sum()
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Lets the harness drive a node as if it acted locally: runs `f` with
    /// the node's state and a context, then routes whatever it sent.
    /// Returns `None` if the node does not exist.
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        let mut out = Vec::new();
        let round = self.round;
        let entry = self.nodes.get_mut(&id)?;
        let mut ctx = Ctx {
            me: id,
            round,
            out: &mut out,
            rng: &mut self.rng,
        };
        let r = f(&mut entry.proto, &mut ctx);
        self.route(id, out);
        Some(r)
    }

    fn route(&mut self, from: NodeId, out: Vec<(NodeId, P::Msg)>) {
        for (to, msg) in out {
            self.metrics.note_sent(from, P::msg_kind(&msg));
            match self.nodes.get_mut(&to) {
                Some(e) => e.channel.push((0, msg)),
                None => self.metrics.dropped += 1, // crashed / never existed
            }
        }
    }

    fn deliver(&mut self, to: NodeId, msg: P::Msg) {
        let mut out = Vec::new();
        let round = self.round;
        if let Some(entry) = self.nodes.get_mut(&to) {
            self.metrics.note_delivered(to);
            let mut ctx = Ctx {
                me: to,
                round,
                out: &mut out,
                rng: &mut self.rng,
            };
            entry.proto.on_message(&mut ctx, msg);
        } else {
            self.metrics.dropped += 1;
        }
        self.route(to, out);
    }

    fn fire_timeout(&mut self, id: NodeId) {
        let mut out = Vec::new();
        let round = self.round;
        if let Some(entry) = self.nodes.get_mut(&id) {
            let mut ctx = Ctx {
                me: id,
                round,
                out: &mut out,
                rng: &mut self.rng,
            };
            entry.proto.on_timeout(&mut ctx);
        }
        self.route(id, out);
    }

    /// One **synchronous round** — the paper's "timeout interval": every
    /// live node, in random order, first processes (in random order) all
    /// messages that were in its channel when it was activated, then
    /// executes `Timeout` exactly once.
    pub fn run_round(&mut self) {
        self.round += 1;
        let mut order = self.ids();
        order.shuffle(&mut self.rng);
        for id in order {
            let Some(entry) = self.nodes.get_mut(&id) else {
                continue;
            };
            let mut inbox = std::mem::take(&mut entry.channel);
            inbox.shuffle(&mut self.rng);
            for (_, msg) in inbox {
                self.deliver(id, msg);
            }
            self.fire_timeout(id);
        }
        self.metrics.rounds += 1;
    }

    /// One **chaos round**: every node, in random order, delivers a random
    /// subset of its channel (forced once a message's age exceeds
    /// `cfg.max_age` — fair receipt) and fires `Timeout` with probability
    /// `cfg.timeout_prob` (weak fairness comes from infinitely many
    /// rounds).
    pub fn run_chaos_round(&mut self, cfg: ChaosConfig) {
        self.round += 1;
        let mut order = self.ids();
        order.shuffle(&mut self.rng);
        for id in order {
            let Some(entry) = self.nodes.get_mut(&id) else {
                continue;
            };
            let mut inbox = std::mem::take(&mut entry.channel);
            inbox.shuffle(&mut self.rng);
            let mut kept = Vec::new();
            for (age, msg) in inbox {
                let force = age >= cfg.max_age;
                if force || self.rng.random_bool(cfg.delivery_prob) {
                    self.deliver(id, msg);
                } else {
                    kept.push((age + 1, msg));
                }
            }
            if let Some(entry) = self.nodes.get_mut(&id) {
                // Keep undelivered messages (new sends may have arrived).
                entry.channel.extend(kept);
            } else {
                self.metrics.dropped += kept.len() as u64;
            }
            if self.rng.random_bool(cfg.timeout_prob) {
                self.fire_timeout(id);
            }
        }
        self.metrics.rounds += 1;
    }

    /// Runs synchronous rounds until `pred(self)` holds or `max_rounds`
    /// elapse; returns the number of rounds executed and whether the
    /// predicate held.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_round();
        }
        (max_rounds, pred(self))
    }

    /// Chaos-mode variant of [`World::run_until`].
    pub fn run_chaos_until(
        &mut self,
        cfg: ChaosConfig,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_chaos_round(cfg);
        }
        (max_rounds, pred(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: counts pings, forwards a token around a fixed ring.
    #[derive(Clone)]
    struct Toy {
        next: NodeId,
        tokens_seen: u64,
        pings_seen: u64,
        timeouts: u64,
    }

    #[derive(Clone, Debug)]
    enum ToyMsg {
        Token(u32),
        Ping,
    }

    impl Protocol for Toy {
        type Msg = ToyMsg;

        fn on_message(&mut self, ctx: &mut Ctx<'_, ToyMsg>, msg: ToyMsg) {
            match msg {
                ToyMsg::Token(ttl) => {
                    self.tokens_seen += 1;
                    if ttl > 0 {
                        ctx.send(self.next, ToyMsg::Token(ttl - 1));
                    }
                }
                ToyMsg::Ping => self.pings_seen += 1,
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Ctx<'_, ToyMsg>) {
            self.timeouts += 1;
        }

        fn msg_kind(msg: &ToyMsg) -> &'static str {
            match msg {
                ToyMsg::Token(_) => "token",
                ToyMsg::Ping => "ping",
            }
        }
    }

    fn ring_world(n: u64, seed: u64) -> World<Toy> {
        let mut w = World::new(seed);
        for i in 0..n {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % n),
                    tokens_seen: 0,
                    pings_seen: 0,
                    timeouts: 0,
                },
            );
        }
        w
    }

    #[test]
    fn round_mode_is_deterministic() {
        let run = |seed| {
            let mut w = ring_world(8, seed);
            w.inject(NodeId(0), ToyMsg::Token(100));
            for _ in 0..30 {
                w.run_round();
            }
            let m = w.metrics().clone();
            (m.sent_total, m.delivered_total)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn token_travels_full_distance() {
        let mut w = ring_world(4, 1);
        w.inject(NodeId(0), ToyMsg::Token(10));
        for _ in 0..40 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 11, "token must be delivered exactly ttl+1 times");
        assert_eq!(w.metrics().kind("token"), 11);
    }

    #[test]
    fn timeouts_fire_every_round() {
        let mut w = ring_world(3, 2);
        for _ in 0..10 {
            w.run_round();
        }
        for (_, t) in w.iter() {
            assert_eq!(t.timeouts, 10);
        }
        assert_eq!(w.metrics().rounds, 10);
    }

    #[test]
    fn chaos_mode_eventually_delivers_everything() {
        let mut w = ring_world(6, 3);
        for _ in 0..20 {
            w.inject(NodeId(2), ToyMsg::Ping);
        }
        let cfg = ChaosConfig {
            delivery_prob: 0.2,
            timeout_prob: 0.3,
            max_age: 5,
        };
        let (_, done) = w.run_chaos_until(cfg, 200, |w| {
            w.node(NodeId(2)).map(|t| t.pings_seen) == Some(20)
        });
        assert!(done, "fair receipt must deliver all pings");
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn crash_consumes_messages_silently() {
        let mut w = ring_world(3, 4);
        w.crash(NodeId(1));
        assert!(!w.is_alive(NodeId(1)));
        w.inject(NodeId(1), ToyMsg::Ping);
        let before = w.metrics().dropped;
        assert!(before >= 1);
        // Token routed through the crashed node dies there.
        w.inject(NodeId(0), ToyMsg::Token(5));
        for _ in 0..10 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(
            total, 1,
            "only node 0 sees the token before it hits the crash"
        );
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn with_node_routes_sends() {
        let mut w = ring_world(2, 5);
        w.with_node(NodeId(0), |_t, ctx| {
            ctx.send(NodeId(1), ToyMsg::Ping);
            assert_eq!(ctx.me(), NodeId(0));
        })
        .unwrap();
        assert_eq!(w.channel_len(NodeId(1)), 1);
        assert!(w.with_node(NodeId(99), |_, _| ()).is_none());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut w = ring_world(4, 6);
        let (rounds, ok) = w.run_until(50, |w| w.round() >= 7);
        assert!(ok);
        assert_eq!(rounds, 7);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_add_panics() {
        let mut w = ring_world(2, 7);
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(0),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
    }

    #[test]
    fn rejoin_after_crash_allowed() {
        let mut w = ring_world(2, 8);
        w.crash(NodeId(0));
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(1),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
        assert!(w.is_alive(NodeId(0)));
    }
}
