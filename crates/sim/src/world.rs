//! The simulated world: nodes, channels, schedulers, crash injection.
//!
//! # Engine layout
//!
//! The stepping core lives in the partition-generic engine
//! ([`crate::engine`]): nodes live in a **slab** — a dense `Vec` of
//! slots plus an id → slot hash map (deterministic FxHash) and a free
//! list. Crashes tombstone the slot; rejoins reuse free slots. Message
//! delivery, routing, and timeout firing therefore cost one O(1) map
//! probe + array index instead of the `BTreeMap` walk the original
//! engine paid per message. A [`World`] is exactly **one partition in
//! local-only mode** (sends to unknown ids are consumed, §3.3); the
//! multi-partition executor over the same core is
//! [`crate::PartitionedWorld`].
//!
//! # Zero-allocation invariant
//!
//! Steady-state rounds perform **no heap allocation in the engine**:
//! the activation order, each node's drained inbox, the chaos `kept`
//! buffer, and every handler outbox are reusable scratch buffers owned
//! by the partition, rotated with `mem::take`/`mem::swap` so their
//! capacities persist across rounds. (Protocol handlers may of course
//! still allocate in their own state.) The `engine_rounds_do_not_grow`
//! test and the `sim_engine` benches in `skippub-bench` guard this.
//!
//! # Determinism
//!
//! All randomness flows through one seeded [`StdRng`](rand::rngs::StdRng);
//! the slab engine consumes draws in exactly the order the original
//! `BTreeMap` engine did (activation shuffle over id-sorted nodes, inbox
//! shuffle, chaos delivery draws, handler draws), so a seed reproduces
//! byte-identical [`Metrics`] across engine versions — see
//! `tests/determinism_fixtures.rs`.

use crate::engine::Partition;
use crate::state::WorldState;
use crate::Metrics;
pub use crate::engine::{ChaosConfig, Ctx, NodeId, Protocol};

/// The simulated distributed system.
///
/// See the module docs for the slab layout, the zero-allocation
/// invariant, and the determinism contract.
pub struct World<P: Protocol> {
    p: Partition<P>,
}

impl<P: Protocol> World<P> {
    /// Creates an empty world with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        World {
            p: Partition::new(seed, true),
        }
    }

    /// Adds a node. Panics on duplicate IDs (a corrupted *world*, unlike a
    /// corrupted protocol state, is a harness bug).
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        self.p.add_node(id, proto);
    }

    /// Crashes a node without warning (§3.3): its state vanishes and all
    /// current and future messages to it are consumed without any action.
    pub fn crash(&mut self, id: NodeId) {
        self.p.crash(id);
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.p.is_alive(id)
    }

    /// IDs of all live nodes, sorted. Allocates — external convenience
    /// only; the round loop uses the internal order scratch.
    pub fn ids(&self) -> Vec<NodeId> {
        self.p.ids()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.p.len() == 0
    }

    /// Immutable access to a node's protocol state (checkers, snapshots).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.p.node(id)
    }

    /// Mutable access — used by adversarial initializers to corrupt
    /// protocol variables before a run, and by operations that model local
    /// user input (subscribe/publish calls).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.p.node_mut(id)
    }

    /// Iterates over `(id, state)` of live nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.p.iter()
    }

    /// Injects a message into `to`'s channel from outside the system
    /// (external requests, or corrupted initial channel content).
    pub fn inject(&mut self, to: NodeId, msg: P::Msg) {
        self.p.inject(to, msg);
    }

    /// Number of in-flight messages to `id`.
    pub fn channel_len(&self, id: NodeId) -> usize {
        self.p.channel_len(id)
    }

    /// Total in-flight messages.
    pub fn in_flight(&self) -> usize {
        self.p.in_flight()
    }

    /// High-water mark of [`World::in_flight`], sampled at the start of
    /// every round. Monotone; starts at 0.
    pub fn peak_in_flight(&self) -> usize {
        self.p.peak_in_flight()
    }

    /// Sets the per-node per-round delivery budget. `None` (the
    /// default) is the paper's synchronous model and is byte-identical
    /// to the unbudgeted engine; `Some(b)` makes every node process at
    /// most `b` messages per activation and carry the rest over to the
    /// next round, bounding in-flight memory under bursts.
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        self.p.set_budget(budget);
    }

    /// The current per-node per-round delivery budget.
    pub fn delivery_budget(&self) -> Option<u32> {
        self.p.budget()
    }

    /// Arms (or disarms) the link-fault plane. Window offsets in
    /// `spec` are relative to the **current round** (the arming base),
    /// so the same spec means the same schedule regardless of warm-up
    /// length. `None` (the default) is perfect channels and is
    /// byte-identical to the pre-fault engine.
    pub fn set_faults(&mut self, spec: Option<crate::FaultSpec>) {
        self.p.set_faults(spec, 0);
    }

    /// The armed fault spec, if any.
    pub fn fault_spec(&self) -> Option<&crate::FaultSpec> {
        self.p.fault_plane().map(|fp| &fp.spec)
    }

    /// Fault accounting (zeros when no plane is armed).
    pub fn fault_counts(&self) -> crate::FaultCounts {
        self.p.fault_counts()
    }

    /// Index of the first sever window active at the current round
    /// that contains `id` — the hook for partition-triggered failover.
    pub fn active_sever_containing(&self, id: NodeId) -> Option<usize> {
        self.p.active_sever_containing(id)
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &Metrics {
        self.p.metrics()
    }

    /// Current round number.
    pub fn round(&self) -> u64 {
        self.p.round()
    }

    /// Current version of dirty channel `key` — monotone, bumped by
    /// handlers via [`Ctx::mark_dirty`] and by [`World::bump_dirty`].
    /// Observers cache work keyed on a channel and redo it only when the
    /// version moved. Never allocates.
    pub fn dirty_version(&self, key: u32) -> u64 {
        self.p.dirty().version(key)
    }

    /// Bumps dirty channel `key` from outside the protocol — the hook
    /// for external operations (join/leave/crash/publish calls) that
    /// change observable state without a handler running.
    pub fn bump_dirty(&mut self, key: u32) {
        self.p.dirty_mut().bump(key);
    }

    /// Lets the harness drive a node as if it acted locally: runs `f` with
    /// the node's state and a context, then routes whatever it sent.
    /// Returns `None` if the node does not exist.
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        self.p.with_node(id, f)
    }

    /// One **synchronous round** — the paper's §3.3 "timeout interval":
    /// every live node, in random order, first processes (in random
    /// order) all messages that were in its channel when it was
    /// activated, then executes `Timeout` exactly once. Messages a node
    /// sends to itself while processing are handled next round.
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub fn run_round(&mut self) {
        self.p.run_round();
    }

    /// One **chaos round**: every node, in random order, delivers a
    /// random subset of its channel — each message independently with
    /// probability [`ChaosConfig::delivery_prob`], *forced* once its age
    /// exceeds [`ChaosConfig::max_age`] (the paper's fair message
    /// receipt: unbounded but finite delay) — and fires `Timeout` with
    /// probability [`ChaosConfig::timeout_prob`] (weak fairness comes
    /// from infinitely many rounds).
    ///
    /// Steady-state calls allocate nothing (module-level invariant).
    pub fn run_chaos_round(&mut self, cfg: ChaosConfig) {
        self.p.run_chaos_round(cfg);
    }

    /// Runs synchronous rounds until `pred(self)` holds or `max_rounds`
    /// elapse; returns the number of rounds executed and whether the
    /// predicate held.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_round();
        }
        (max_rounds, pred(self))
    }

    /// Chaos-mode variant of [`World::run_until`].
    pub fn run_chaos_until(
        &mut self,
        cfg: ChaosConfig,
        max_rounds: u64,
        mut pred: impl FnMut(&World<P>) -> bool,
    ) -> (u64, bool) {
        for i in 0..max_rounds {
            if pred(self) {
                return (i, true);
            }
            self.run_chaos_round(cfg);
        }
        (max_rounds, pred(self))
    }

    /// Exports the world's exact state for a checkpoint (see
    /// [`crate::WorldState`]). Call at a round boundary only.
    pub fn export_state(&self) -> WorldState<P>
    where
        P: Clone,
    {
        WorldState {
            partition: self.p.export_state(),
        }
    }

    /// Rebuilds a world from an exported state. Stepping the restored
    /// world is byte-identical to stepping the original — same RNG
    /// draws, same metrics, same trajectories.
    pub fn from_state(state: WorldState<P>) -> Self {
        World {
            p: Partition::from_state(state.partition, true),
        }
    }

    /// Capacity currently reserved by the engine's scratch buffers —
    /// `(order, inbox, kept, out)`. Test hook for the zero-allocation
    /// invariant: steady-state rounds must not grow these.
    #[doc(hidden)]
    pub fn scratch_capacities(&self) -> (usize, usize, usize, usize) {
        self.p.scratch_capacities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: counts pings, forwards a token around a fixed ring.
    #[derive(Clone)]
    struct Toy {
        next: NodeId,
        tokens_seen: u64,
        pings_seen: u64,
        timeouts: u64,
    }

    #[derive(Clone, Debug)]
    enum ToyMsg {
        Token(u32),
        Ping,
    }

    impl Protocol for Toy {
        type Msg = ToyMsg;

        fn on_message(&mut self, ctx: &mut Ctx<'_, ToyMsg>, msg: ToyMsg) {
            match msg {
                ToyMsg::Token(ttl) => {
                    self.tokens_seen += 1;
                    if ttl > 0 {
                        ctx.send(self.next, ToyMsg::Token(ttl - 1));
                    }
                }
                ToyMsg::Ping => self.pings_seen += 1,
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Ctx<'_, ToyMsg>) {
            self.timeouts += 1;
        }

        fn msg_kind(msg: &ToyMsg) -> &'static str {
            match msg {
                ToyMsg::Token(_) => "token",
                ToyMsg::Ping => "ping",
            }
        }
    }

    fn ring_world(n: u64, seed: u64) -> World<Toy> {
        let mut w = World::new(seed);
        for i in 0..n {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % n),
                    tokens_seen: 0,
                    pings_seen: 0,
                    timeouts: 0,
                },
            );
        }
        w
    }

    #[test]
    fn round_mode_is_deterministic() {
        let run = |seed| {
            let mut w = ring_world(8, seed);
            w.inject(NodeId(0), ToyMsg::Token(100));
            for _ in 0..30 {
                w.run_round();
            }
            let m = w.metrics().clone();
            (m.sent_total, m.delivered_total)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn token_travels_full_distance() {
        let mut w = ring_world(4, 1);
        w.inject(NodeId(0), ToyMsg::Token(10));
        for _ in 0..40 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 11, "token must be delivered exactly ttl+1 times");
        assert_eq!(w.metrics().kind("token"), 11);
    }

    #[test]
    fn timeouts_fire_every_round() {
        let mut w = ring_world(3, 2);
        for _ in 0..10 {
            w.run_round();
        }
        for (_, t) in w.iter() {
            assert_eq!(t.timeouts, 10);
        }
        assert_eq!(w.metrics().rounds, 10);
    }

    #[test]
    fn chaos_mode_eventually_delivers_everything() {
        let mut w = ring_world(6, 3);
        for _ in 0..20 {
            w.inject(NodeId(2), ToyMsg::Ping);
        }
        let cfg = ChaosConfig {
            delivery_prob: 0.2,
            timeout_prob: 0.3,
            max_age: 5,
        };
        let (_, done) = w.run_chaos_until(cfg, 200, |w| {
            w.node(NodeId(2)).map(|t| t.pings_seen) == Some(20)
        });
        assert!(done, "fair receipt must deliver all pings");
        assert_eq!(w.in_flight(), 0);
    }

    #[test]
    fn delivery_budget_carries_messages_over() {
        let mut w = ring_world(3, 12);
        w.set_delivery_budget(Some(1));
        assert_eq!(w.delivery_budget(), Some(1));
        for _ in 0..5 {
            w.inject(NodeId(0), ToyMsg::Ping);
        }
        assert_eq!(w.peak_in_flight(), 0, "peak samples at round starts");
        w.run_round();
        // One delivered, four carried over to the next round.
        assert_eq!(w.node(NodeId(0)).unwrap().pings_seen, 1);
        assert_eq!(w.channel_len(NodeId(0)), 4);
        assert_eq!(w.peak_in_flight(), 5);
        for _ in 0..4 {
            w.run_round();
        }
        assert_eq!(w.node(NodeId(0)).unwrap().pings_seen, 5);
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.peak_in_flight(), 5, "peak is a high-water mark");
    }

    #[test]
    fn budgeted_chaos_still_delivers_everything() {
        let mut w = ring_world(4, 13);
        w.set_delivery_budget(Some(1));
        for _ in 0..12 {
            w.inject(NodeId(1), ToyMsg::Ping);
        }
        let cfg = ChaosConfig {
            delivery_prob: 0.3,
            timeout_prob: 0.3,
            max_age: 4,
        };
        let (_, done) = w.run_chaos_until(cfg, 400, |w| {
            w.node(NodeId(1)).map(|t| t.pings_seen) == Some(12)
        });
        assert!(done, "budget ≥ 1 must preserve fair receipt");
        assert_eq!(w.in_flight(), 0);
        assert!(w.peak_in_flight() >= 12);
    }

    #[test]
    fn crash_consumes_messages_silently() {
        let mut w = ring_world(3, 4);
        w.crash(NodeId(1));
        assert!(!w.is_alive(NodeId(1)));
        w.inject(NodeId(1), ToyMsg::Ping);
        let before = w.metrics().dropped;
        assert!(before >= 1);
        // Token routed through the crashed node dies there.
        w.inject(NodeId(0), ToyMsg::Token(5));
        for _ in 0..10 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(
            total, 1,
            "only node 0 sees the token before it hits the crash"
        );
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn with_node_routes_sends() {
        let mut w = ring_world(2, 5);
        w.with_node(NodeId(0), |_t, ctx| {
            ctx.send(NodeId(1), ToyMsg::Ping);
            assert_eq!(ctx.me(), NodeId(0));
        })
        .unwrap();
        assert_eq!(w.channel_len(NodeId(1)), 1);
        assert!(w.with_node(NodeId(99), |_, _| ()).is_none());
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut w = ring_world(4, 6);
        let (rounds, ok) = w.run_until(50, |w| w.round() >= 7);
        assert!(ok);
        assert_eq!(rounds, 7);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_add_panics() {
        let mut w = ring_world(2, 7);
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(0),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
    }

    #[test]
    fn rejoin_after_crash_allowed() {
        let mut w = ring_world(2, 8);
        w.crash(NodeId(0));
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(1),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
        assert!(w.is_alive(NodeId(0)));
    }

    #[test]
    fn rejoin_reuses_tombstoned_slot_and_continues_metrics() {
        let mut w = ring_world(3, 9);
        w.inject(NodeId(1), ToyMsg::Ping);
        w.run_round();
        let sent_before = w.metrics().sent_by(NodeId(1));
        w.crash(NodeId(1));
        w.add_node(
            NodeId(1),
            Toy {
                next: NodeId(2),
                tokens_seen: 0,
                pings_seen: 0,
                timeouts: 0,
            },
        );
        // Same slot count as before the crash: tombstone was reused.
        assert_eq!(w.len(), 3);
        w.inject(NodeId(1), ToyMsg::Ping);
        w.run_round();
        assert_eq!(w.node(NodeId(1)).unwrap().pings_seen, 1);
        // Per-id counters continued, not reset.
        assert!(w.metrics().sent_by(NodeId(1)) >= sent_before);
    }

    #[test]
    fn scratch_capacities_survive_rounds() {
        // The full zero-allocation invariant is asserted with a counting
        // allocator in tests/zero_alloc.rs; here just check the scratch
        // buffers exist and hold their capacity across empty rounds.
        let mut w = ring_world(16, 10);
        w.run_round();
        let warmed = w.scratch_capacities();
        assert!(warmed.0 >= 16, "order scratch must hold all nodes");
        for _ in 0..50 {
            w.run_round();
        }
        assert_eq!(w.scratch_capacities(), warmed);
    }

    #[test]
    fn nested_ctx_shares_identity_and_rng() {
        // `Ctx::nest` is the adapter hook (§4 multi-topic re-tagging):
        // the inner context must report the same node id and feed sends
        // into the caller's buffer, without constructing a fresh RNG.
        let mut w = ring_world(2, 11);
        let mut inner_sends: Vec<(NodeId, u8)> = Vec::new();
        w.with_node(NodeId(0), |_t, ctx| {
            ctx.nest(&mut inner_sends, |ictx| {
                assert_eq!(ictx.me(), NodeId(0));
                let _ = ictx.random_bool(0.5);
                ictx.send(NodeId(1), 42u8);
            });
        })
        .unwrap();
        assert_eq!(inner_sends, vec![(NodeId(1), 42u8)]);
    }
}
