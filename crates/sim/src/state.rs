//! Portable world state — the checkpoint/restore shapes.
//!
//! A snapshot of a simulated system must let a restored world **continue
//! byte-identically**: same RNG draws, same activation shuffles, same
//! metrics, same message trajectories. These structs capture exactly the
//! state that influences future behavior, in owner-independent form:
//!
//! * live nodes in ascending id order, each with its protocol state and
//!   channel contents (message ages included, so chaos-mode fairness
//!   clocks survive);
//! * the xoshiro256** RNG state words of every stream;
//! * every engine register (round, budget, peaks, sequence numbers);
//! * metrics and dirty-table counters in intern order (see
//!   [`MetricsState`](crate::MetricsState)).
//!
//! What is deliberately **not** here: slab slot assignments, tombstones,
//! and free lists. Only the live-node order influences stepping (the
//! activation shuffle draws over live nodes; sends to dead ids miss the
//! id → slot map and are dropped identically either way), so a restored
//! world packs nodes densely and still replays the original trajectory.

use crate::engine::Envelope;
use crate::faults::FaultPlane;
use crate::metrics::MetricsState;
use crate::{NodeId, Protocol};

/// One live node: identity, protocol state, in-flight channel contents.
pub struct NodeState<P: Protocol> {
    /// The node's id.
    pub id: NodeId,
    /// The protocol state machine, exactly as it was.
    pub proto: P,
    /// In-flight `(age, message)` pairs in channel order.
    pub channel: Vec<(u32, P::Msg)>,
}

/// Exact state of one engine partition (the serial world is a single
/// partition): everything [`crate::World`]'s stepping reads.
pub struct PartitionState<P: Protocol> {
    /// Live nodes in ascending id order.
    pub nodes: Vec<NodeState<P>>,
    /// xoshiro256** RNG state words of the partition's stream.
    pub rng: [u64; 4],
    /// Rounds stepped so far.
    pub round: u64,
    /// Per-node per-round delivery budget (`None` = unbounded).
    pub budget: Option<u32>,
    /// Cumulative metrics (intern order preserved).
    pub metrics: MetricsState,
    /// Raw dirty-channel version counters, indexed by key.
    pub dirty: Vec<u64>,
    /// High-water mark of in-flight messages.
    pub peak_in_flight: u64,
    /// Next cross-partition envelope sequence number.
    pub seq: u64,
    /// Cumulative cross-partition envelopes emitted.
    pub cross_sent: u64,
    /// Cumulative node activations (live slots visited by rounds).
    pub stepped: u64,
    /// Cumulative mailbox lock acquisitions (batched flushes + drains).
    pub lock_acquisitions: u64,
    /// The armed link-fault plane — spec, stream states, counters, and
    /// held messages — captured verbatim so a mid-fault-window restore
    /// continues byte-identically. `None` = perfect channels.
    pub faults: Option<FaultPlane<P::Msg>>,
}

/// Exact state of a serial [`crate::World`].
pub struct WorldState<P: Protocol> {
    /// The world's single (local-only) partition.
    pub partition: PartitionState<P>,
}

/// Exact state of a [`crate::PartitionedWorld`].
///
/// The id → partition home map is *not* stored: it is exactly "which
/// partition's node list contains the id", so restore rebuilds it.
pub struct PartitionedState<P: Protocol> {
    /// Per-partition states, in partition-index order.
    pub partitions: Vec<PartitionState<P>>,
    /// Per-destination-partition inbound mailbox contents —
    /// cross-partition envelopes in flight at the snapshot boundary.
    pub mailboxes: Vec<Vec<Envelope<P::Msg>>>,
    /// Worker-thread cap (a scheduling hint, never affects results).
    pub threads: u64,
    /// Rounds stepped so far.
    pub round: u64,
    /// Raw world-level external dirty bumps, indexed by key.
    pub extra_dirty: Vec<u64>,
    /// The orphan-inject metrics bucket (sends to ids no partition
    /// hosts, counted world-level).
    pub orphan: MetricsState,
}

#[cfg(test)]
mod tests {
    use crate::{ChaosConfig, Ctx, NodeId, PartitionedWorld, Protocol, World};

    /// Toy protocol: forwards a decrementing token, draws randomness.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Toy {
        next: NodeId,
        tokens_seen: u64,
        coin_flips: u64,
    }

    #[derive(Clone, Debug)]
    struct Token(u32);

    impl Protocol for Toy {
        type Msg = Token;

        fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, msg: Token) {
            self.tokens_seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }

        fn on_timeout(&mut self, ctx: &mut Ctx<'_, Token>) {
            if ctx.random_bool(0.5) {
                self.coin_flips += 1;
            }
        }

        fn msg_kind(_: &Token) -> &'static str {
            "token"
        }
    }

    fn ring(n: u64, seed: u64) -> World<Toy> {
        let mut w = World::new(seed);
        for i in 0..n {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % n),
                    tokens_seen: 0,
                    coin_flips: 0,
                },
            );
        }
        w
    }

    fn digest(w: &World<Toy>) -> (Vec<(NodeId, Toy)>, crate::Metrics, u64, usize) {
        (
            w.iter().map(|(id, t)| (id, t.clone())).collect(),
            w.metrics().clone(),
            w.round(),
            w.in_flight(),
        )
    }

    #[test]
    fn serial_restore_continues_byte_identically() {
        let mut reference = ring(10, 42);
        reference.inject(NodeId(0), Token(300));
        reference.set_delivery_budget(Some(2));
        for _ in 0..20 {
            reference.run_round();
        }

        let mut original = ring(10, 42);
        original.inject(NodeId(0), Token(300));
        original.set_delivery_budget(Some(2));
        for _ in 0..10 {
            original.run_round();
        }
        let mut restored = World::from_state(original.export_state());
        for _ in 0..10 {
            restored.run_round();
        }
        assert_eq!(digest(&restored), digest(&reference));
        assert_eq!(restored.dirty_version(0), reference.dirty_version(0));
    }

    #[test]
    fn chaos_restore_preserves_rng_stream_and_message_ages() {
        let cfg = ChaosConfig {
            delivery_prob: 0.3,
            timeout_prob: 0.5,
            max_age: 4,
        };
        let mut reference = ring(8, 7);
        reference.inject(NodeId(3), Token(120));
        for _ in 0..30 {
            reference.run_chaos_round(cfg);
        }

        let mut original = ring(8, 7);
        original.inject(NodeId(3), Token(120));
        for _ in 0..13 {
            original.run_chaos_round(cfg);
        }
        let mut restored = World::from_state(original.export_state());
        for _ in 0..17 {
            restored.run_chaos_round(cfg);
        }
        assert_eq!(digest(&restored), digest(&reference));
    }

    #[test]
    fn restore_after_crash_keeps_drop_semantics_and_counters() {
        let build = |crash_at: bool| {
            let mut w = ring(6, 11);
            w.inject(NodeId(0), Token(90));
            for _ in 0..5 {
                w.run_round();
            }
            w.crash(NodeId(2));
            if crash_at {
                return w;
            }
            w
        };
        let mut reference = build(false);
        for _ in 0..15 {
            reference.run_round();
        }
        let original = build(true);
        let mut restored = World::from_state(original.export_state());
        // Sends to the crashed id must still drop (slot map miss).
        for _ in 0..15 {
            restored.run_round();
        }
        assert_eq!(digest(&restored), digest(&reference));
        // Crashed node's metrics survive (counters keyed by id).
        assert_eq!(
            restored.metrics().sent_by(NodeId(2)),
            reference.metrics().sent_by(NodeId(2))
        );
    }

    /// A snapshot taken *inside* a fault window — stream states
    /// advanced, messages held in the pending buffer — must restore
    /// and continue byte-identically, and re-exporting right after the
    /// restore must reproduce the same state.
    #[test]
    fn mid_fault_window_restore_continues_byte_identically() {
        let spec = crate::FaultSpec {
            seed: 13,
            rules: vec![crate::FaultRule {
                from_round: 0,
                to_round: 40,
                link: crate::LinkClass::All,
                drop: 0.05,
                dup: 0.1,
                delay: 0.45,
                delay_rounds: 3,
                reorder: 0.2,
                reorder_max: 4,
            }],
            severs: vec![crate::Sever {
                from_round: 10,
                to_round: 25,
                group: vec![1, 3],
            }],
        };
        let seed_tokens = |w: &mut World<Toy>| {
            for n in [0u64, 2, 4, 6] {
                w.inject(NodeId(n), Token(300));
            }
        };
        let mut reference = ring(8, 19);
        reference.set_faults(Some(spec.clone()));
        seed_tokens(&mut reference);
        for _ in 0..50 {
            reference.run_round();
        }

        let mut original = ring(8, 19);
        original.set_faults(Some(spec));
        seed_tokens(&mut original);
        for _ in 0..15 {
            original.run_round();
        }
        // Mid-window: pending buffer should be non-empty.
        let snap = original.export_state();
        let fp = snap.partition.faults.as_ref().expect("plane armed");
        assert!(!fp.pending.is_empty(), "snapshot must catch held messages");
        let mut restored = World::from_state(snap);
        for _ in 0..35 {
            restored.run_round();
        }
        assert_eq!(digest(&restored), digest(&reference));
        assert_eq!(restored.fault_counts(), reference.fault_counts());
    }

    #[test]
    fn partitioned_restore_is_identical_for_every_thread_count() {
        let build = |threads: usize| {
            let mut w: PartitionedWorld<Toy> = PartitionedWorld::new(5, 4, threads);
            for i in 0..16u64 {
                w.add_node(
                    NodeId(i),
                    Toy {
                        next: NodeId((i + 1) % 16),
                        tokens_seen: 0,
                        coin_flips: 0,
                    },
                    (i % 4) as u32,
                );
            }
            w.inject(NodeId(0), Token(200));
            w
        };
        let mut reference = build(1);
        reference.run_rounds(40);
        let ref_states: Vec<(NodeId, Toy)> =
            reference.iter().map(|(id, t)| (id, t.clone())).collect();
        let ref_metrics = reference.metrics();

        for threads in [1, 2, 4, 8] {
            let mut original = build(threads);
            original.run_rounds(17);
            // Mid-flight snapshot: mailboxes may be non-empty.
            let mut restored = PartitionedWorld::from_state(original.export_state());
            restored.run_rounds(23);
            let states: Vec<(NodeId, Toy)> =
                restored.iter().map(|(id, t)| (id, t.clone())).collect();
            assert_eq!(states, ref_states, "threads={threads} diverged");
            assert_eq!(restored.metrics(), ref_metrics);
            assert_eq!(restored.round(), reference.round());
        }
    }
}
