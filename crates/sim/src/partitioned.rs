//! [`PartitionedWorld`]: many slab partitions stepped by a
//! **deterministic parallel round executor**.
//!
//! # Why rounds are an exact parallelism barrier
//!
//! The paper's execution model is synchronous-round based: in one
//! "timeout interval" every node processes the messages that were in
//! its channel *at activation* and fires `Timeout` once; everything it
//! sends is handled no earlier than the next round at a remote node.
//! Partition the nodes, and a round factorizes: intra-partition
//! scheduling touches only the partition's own slab and RNG stream,
//! while every cross-partition message crosses a round boundary anyway.
//! Stepping partitions concurrently therefore yields **bit-identical
//! results for any worker count** — the only sharing is the mailbox
//! hand-off, and that is ordered canonically (below).
//!
//! # The round protocol
//!
//! Each round runs in two phases separated by barriers:
//!
//! 1. **drain** — every partition takes its inbound mailbox, sorts the
//!    batch by `(source partition, sequence number)`, and appends the
//!    envelopes to the destination nodes' channels. The sort makes the
//!    hand-off independent of which worker pushed first.
//! 2. **step + flush** — every partition runs one synchronous round on
//!    its own slab/RNG (sends to local nodes go straight to channels;
//!    sends to foreign ids are staged in the partition's outbox), then
//!    flushes the outbox: each staged send becomes an
//!    [`Envelope`](crate::Envelope) stamped with the source partition
//!    and a monotone per-source sequence number and is pushed to the
//!    destination partition's mailbox.
//!
//! The barrier between the phases keeps round `r` drains from racing
//! round `r` flushes; the barrier at the end of the round keeps round
//! `r` flushes from racing round `r+1` drains.
//!
//! # RNG stream splitting
//!
//! Partition `i` owns `StdRng::seed_from_u64(splitmix64(seed, i))` — an
//! independent stream derived from the world seed by a SplitMix64
//! finalizer, so partition executions are deterministic functions of
//! `(seed, partition count)` and entirely independent of the worker
//! count. Worker threads only decide *which CPU* steps a partition,
//! never *what* it computes.

use crate::engine::{Envelope, Partition};
use crate::fx::FxBuildHasher;
use crate::state::PartitionedState;
use crate::{Ctx, Metrics, NodeId, Protocol, World};
use std::collections::HashMap;
use std::sync::{Barrier, Mutex};

/// Shared read access to a simulated system's protocol states —
/// implemented by both the serial [`World`] and the parallel
/// [`PartitionedWorld`], so checkers and snapshot builders can be
/// written once against either.
pub trait NodeView<P: Protocol> {
    /// Immutable access to node `id`'s protocol state, if alive.
    fn peek(&self, id: NodeId) -> Option<&P>;

    /// Iterates `(id, state)` over live nodes in ascending id order.
    fn nodes<'a>(&'a self) -> impl Iterator<Item = (NodeId, &'a P)>
    where
        P: 'a;
}

impl<P: Protocol> NodeView<P> for World<P> {
    fn peek(&self, id: NodeId) -> Option<&P> {
        self.node(id)
    }

    fn nodes<'a>(&'a self) -> impl Iterator<Item = (NodeId, &'a P)>
    where
        P: 'a,
    {
        self.iter()
    }
}

impl<P: Protocol> NodeView<P> for PartitionedWorld<P> {
    fn peek(&self, id: NodeId) -> Option<&P> {
        self.node(id)
    }

    fn nodes<'a>(&'a self) -> impl Iterator<Item = (NodeId, &'a P)>
    where
        P: 'a,
    {
        self.iter()
    }
}

/// Derives partition `i`'s RNG stream seed from the world seed
/// (SplitMix64 finalizer over `seed ⊕ (i+1)·φ`).
fn split_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A simulated system split into partitions, stepped by the
/// deterministic parallel round executor (module docs).
///
/// Node placement is the caller's policy: [`PartitionedWorld::add_node`]
/// takes an explicit partition index (the sharded backend co-locates
/// each shard supervisor with its topics' clients). Results are
/// byte-identical for every `threads` value, including `1`.
pub struct PartitionedWorld<P: Protocol> {
    partitions: Vec<Partition<P>>,
    /// Per-destination-partition inbound envelope queues.
    mailboxes: Vec<Mutex<Vec<Envelope<P::Msg>>>>,
    /// id → hosting partition, for every live node.
    home: HashMap<u64, u32, FxBuildHasher>,
    threads: usize,
    round: u64,
    /// Dirty-channel bumps from external operations (node additions,
    /// crashes, harness-driven calls) — kept world-level so they need
    /// no partition routing; [`PartitionedWorld::dirty_version`] sums
    /// this table with every partition's handler-reported bumps.
    extra_dirty: crate::DirtyTable,
    /// Accounting for external injects to ids no partition hosts: the
    /// serial world counts such a send (and its immediate §3.3 drop) in
    /// its single metrics, so the partitioned world keeps the same
    /// counters here — aggregated totals stay comparable with serial
    /// runs without charging any partition for a message none hosted.
    orphan: Metrics,
}

impl<P: Protocol> PartitionedWorld<P> {
    /// Creates `partitions` empty partitions with independent RNG
    /// streams derived from `seed`, stepped by up to `threads` workers.
    pub fn new(seed: u64, partitions: usize, threads: usize) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        assert!(threads >= 1, "need at least one worker");
        PartitionedWorld {
            partitions: (0..partitions)
                .map(|i| Partition::new(split_seed(seed, i as u64), false))
                .collect(),
            mailboxes: (0..partitions).map(|_| Mutex::new(Vec::new())).collect(),
            home: HashMap::default(),
            threads,
            round: 0,
            extra_dirty: crate::DirtyTable::default(),
            orphan: Metrics::default(),
        }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Adds a node to `partition`. Panics on duplicate IDs (across all
    /// partitions) or an out-of-range partition.
    pub fn add_node(&mut self, id: NodeId, proto: P, partition: u32) {
        assert!(
            (partition as usize) < self.partitions.len(),
            "partition {partition} out of range"
        );
        assert!(
            !self.home.contains_key(&id.0),
            "duplicate node {id}"
        );
        self.partitions[partition as usize].add_node(id, proto);
        self.home.insert(id.0, partition);
    }

    /// The partition hosting `id`, if alive.
    pub fn partition_of(&self, id: NodeId) -> Option<u32> {
        self.home.get(&id.0).copied()
    }

    /// Crashes a node without warning (§3.3). Envelopes already in
    /// flight to it are consumed at the destination partition's next
    /// drain.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(p) = self.home.remove(&id.0) {
            self.partitions[p as usize].crash(id);
        }
    }

    /// Moves a live node to another partition, carrying its pending
    /// channel contents and re-routing its in-flight mailbox envelopes.
    /// A no-op for unknown nodes or a same-partition destination.
    ///
    /// Call at a round boundary only (outboxes are always flushed
    /// there). The result is deterministic for every worker count:
    /// everything moved is data-determined state, and although the
    /// *order* of envelopes inside a mailbox can differ between runs,
    /// the destination's drain sorts by `(src, seq)` before delivering.
    pub fn move_node(&mut self, id: NodeId, dest: u32) {
        assert!(
            (dest as usize) < self.partitions.len(),
            "partition {dest} out of range"
        );
        let Some(&old) = self.home.get(&id.0) else {
            return;
        };
        if old == dest {
            return;
        }
        let (proto, pending) = self.partitions[old as usize]
            .extract_node(id)
            .expect("home map out of sync");
        self.partitions[dest as usize].install_node(id, proto, pending);
        self.home.insert(id.0, dest);
        // Envelopes already in flight to the node sit in its *old*
        // partition's mailbox; re-route them so they still arrive.
        let mut moved: Vec<Envelope<P::Msg>> = Vec::new();
        {
            let mut mb = self.mailboxes[old as usize]
                .lock()
                .expect("mailbox poisoned");
            let mut i = 0;
            while i < mb.len() {
                if mb[i].to == id {
                    moved.push(mb.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        if !moved.is_empty() {
            self.mailboxes[dest as usize]
                .lock()
                .expect("mailbox poisoned")
                .append(&mut moved);
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.home.contains_key(&id.0)
    }

    /// Number of live nodes across all partitions.
    pub fn len(&self) -> usize {
        self.home.len()
    }

    /// Whether no nodes are alive.
    pub fn is_empty(&self) -> bool {
        self.home.is_empty()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> Option<&P> {
        let p = self.partition_of(id)?;
        self.partitions[p as usize].node(id)
    }

    /// Mutable access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let p = self.partition_of(id)?;
        self.partitions[p as usize].node_mut(id)
    }

    /// IDs of all live nodes, ascending.
    pub fn ids(&self) -> Vec<NodeId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// Iterates `(id, state)` of live nodes in ascending id order — a
    /// k-way merge over the partitions' sorted orders.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &P)> {
        Merged {
            parts: self.partitions.iter().map(|p| (p, 0usize)).collect(),
        }
    }

    /// Injects a message from outside the system into `to`'s channel.
    /// An inject to an id no partition hosts is counted exactly like
    /// the serial world counts it: one send of its kind, immediately
    /// dropped (§3.3).
    pub fn inject(&mut self, to: NodeId, msg: P::Msg) {
        match self.partition_of(to) {
            Some(p) => self.partitions[p as usize].inject(to, msg),
            None => {
                self.orphan.note_sent(to, P::msg_kind(&msg));
                self.orphan.dropped += 1;
            }
        }
    }

    /// Drives node `id` as if it acted locally (subscribe/publish calls):
    /// runs `f` with its state and a context, routes local sends, and
    /// immediately routes cross-partition sends into the destination
    /// mailboxes (delivered from the next round on, exactly like a
    /// local channel push). Returns `None` if the node does not exist.
    pub fn with_node<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut P, &mut Ctx<'_, P::Msg>) -> R,
    ) -> Option<R> {
        let p = self.partition_of(id)?;
        let r = self.partitions[p as usize].with_node(id, f);
        self.partitions[p as usize].flush_outbox(p, &self.home, &self.mailboxes);
        r
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current version of dirty channel `key`: the sum of every
    /// partition's handler-reported bumps plus the external-operation
    /// bumps. A sum of monotone counters is monotone, and it moves iff
    /// some component moved, which is all observers rely on. Never
    /// allocates.
    pub fn dirty_version(&self, key: u32) -> u64 {
        let mut v = self.extra_dirty.version(key);
        for p in &self.partitions {
            v += p.dirty().version(key);
        }
        v
    }

    /// Bumps dirty channel `key` from outside the protocol (external
    /// operations; see [`World::bump_dirty`]).
    pub fn bump_dirty(&mut self, key: u32) {
        self.extra_dirty.bump(key);
    }

    /// Total in-flight messages: channel contents plus mailbox envelopes.
    pub fn in_flight(&self) -> usize {
        let channels: usize = self.partitions.iter().map(|p| p.in_flight()).sum();
        let boxed: usize = self
            .mailboxes
            .iter()
            .map(|m| m.lock().expect("mailbox poisoned").len())
            .sum();
        channels + boxed
    }

    /// High-water mark of in-flight messages: the sum of every
    /// partition's own peak (each sampled at its round starts, after the
    /// mailbox drain). An upper bound on the true simultaneous peak that
    /// is deterministic for every thread count — sampling a global
    /// maximum mid-round would race the workers.
    pub fn peak_in_flight(&self) -> usize {
        self.partitions.iter().map(|p| p.peak_in_flight()).sum()
    }

    /// Partition `i`'s own in-flight high-water mark.
    pub fn partition_peak_in_flight(&self, i: usize) -> usize {
        self.partitions[i].peak_in_flight()
    }

    /// Sets the per-node per-round delivery budget on every partition
    /// (see [`World::set_delivery_budget`]).
    pub fn set_delivery_budget(&mut self, budget: Option<u32>) {
        for p in &mut self.partitions {
            p.set_budget(budget);
        }
    }

    /// The current per-node per-round delivery budget.
    pub fn delivery_budget(&self) -> Option<u32> {
        self.partitions.first().and_then(|p| p.budget())
    }

    /// Arms (or disarms) the link-fault plane on every partition.
    /// Window offsets in `spec` are relative to the **current round**
    /// (the arming base). Each partition derives its own fault streams
    /// from `(spec seed, partition index)`, so outcomes are
    /// byte-identical for every worker-thread count.
    pub fn set_faults(&mut self, spec: Option<crate::FaultSpec>) {
        for (i, p) in self.partitions.iter_mut().enumerate() {
            p.set_faults(spec.clone(), i as u32);
        }
    }

    /// The armed fault spec, if any.
    pub fn fault_spec(&self) -> Option<&crate::FaultSpec> {
        self.partitions
            .first()
            .and_then(|p| p.fault_plane())
            .map(|fp| &fp.spec)
    }

    /// Aggregated fault accounting over all partitions (zeros when no
    /// plane is armed).
    pub fn fault_counts(&self) -> crate::FaultCounts {
        let mut agg = crate::FaultCounts::default();
        for p in &self.partitions {
            agg.merge(&p.fault_counts());
        }
        agg
    }

    /// Partition `i`'s own fault accounting.
    pub fn partition_fault_counts(&self, i: usize) -> crate::FaultCounts {
        self.partitions[i].fault_counts()
    }

    /// Index of the first sever window active at the current round
    /// that contains `id` — the hook backends watch to turn a
    /// scheduled partition into a supervisor failover. Every partition
    /// shares the same spec and base, so partition 0 answers for all.
    pub fn active_sever_containing(&self, id: NodeId) -> Option<usize> {
        self.partitions
            .first()
            .and_then(|p| p.active_sever_containing(id))
    }

    /// Partition `i`'s own cumulative metrics.
    pub fn partition_metrics(&self, i: usize) -> &Metrics {
        self.partitions[i].metrics()
    }

    /// Cumulative cross-partition envelopes emitted by partition `i`.
    pub fn cross_envelopes(&self, i: usize) -> u64 {
        self.partitions[i].cross_sent()
    }

    /// Cumulative node activations in partition `i` — live slots visited
    /// by rounds. Together with delivered counts this is the
    /// per-partition *work* gauge behind the imbalance metrics.
    pub fn partition_stepped(&self, i: usize) -> u64 {
        self.partitions[i].stepped()
    }

    /// Cumulative mailbox lock acquisitions charged to partition `i`:
    /// one per inbound drain plus one per non-empty destination batch it
    /// flushed. Data-determined, so identical for every thread count.
    pub fn partition_lock_acquisitions(&self, i: usize) -> u64 {
        self.partitions[i].lock_acquisitions()
    }

    /// Total mailbox lock acquisitions across all partitions. Bounded
    /// by `(1 + partitions) · partitions · rounds` in the worst case —
    /// per round each partition takes one drain lock and at most one
    /// flush lock per destination — instead of one lock per envelope.
    pub fn lock_acquisitions(&self) -> u64 {
        self.partitions.iter().map(|p| p.lock_acquisitions()).sum()
    }

    /// Exports the world's exact state for a checkpoint (see
    /// [`crate::PartitionedState`]). Call at a round boundary only:
    /// partition outboxes must be flushed (they always are between
    /// rounds); inbound mailboxes may hold in-flight envelopes and are
    /// captured verbatim.
    pub fn export_state(&self) -> PartitionedState<P>
    where
        P: Clone,
    {
        PartitionedState {
            partitions: self.partitions.iter().map(|p| p.export_state()).collect(),
            mailboxes: self
                .mailboxes
                .iter()
                .map(|m| m.lock().expect("mailbox poisoned").clone())
                .collect(),
            threads: self.threads as u64,
            round: self.round,
            extra_dirty: self.extra_dirty.export(),
            orphan: self.orphan.export(),
        }
    }

    /// Rebuilds a world from an exported state; the id → partition home
    /// map is reconstructed from the partition node lists. Stepping the
    /// restored world is byte-identical to stepping the original, for
    /// every worker-thread count.
    pub fn from_state(state: PartitionedState<P>) -> Self {
        let mut home: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        let mut partitions = Vec::with_capacity(state.partitions.len());
        for (i, ps) in state.partitions.into_iter().enumerate() {
            for node in &ps.nodes {
                home.insert(node.id.0, i as u32);
            }
            partitions.push(Partition::from_state(ps, false));
        }
        PartitionedWorld {
            partitions,
            mailboxes: state.mailboxes.into_iter().map(Mutex::new).collect(),
            home,
            threads: (state.threads as usize).max(1),
            round: state.round,
            extra_dirty: crate::DirtyTable::import(state.extra_dirty),
            orphan: Metrics::import(&state.orphan),
        }
    }

    /// Aggregated metrics over all partitions: totals, per-kind and
    /// per-node counters are summed (plus the orphan-inject bucket, so
    /// totals match a serial world fed the same op sequence); `rounds`
    /// is the world's round count, not the sum — every partition steps
    /// every round.
    pub fn metrics(&self) -> Metrics {
        let mut agg = Metrics::default();
        for p in &self.partitions {
            agg.merge(p.metrics());
        }
        agg.merge(&self.orphan);
        agg.rounds = self.round;
        agg
    }
}

impl<P: Protocol + Send> PartitionedWorld<P>
where
    P::Msg: Send,
{
    /// One synchronous round of the whole system (module docs). Results
    /// are identical for every `threads` setting.
    pub fn run_round(&mut self) {
        self.run_rounds(1);
    }

    /// Runs `n` synchronous rounds. With `threads > 1` the worker scope
    /// is spawned once for the whole batch, so driving the world in
    /// batches amortizes thread start-up; single-round calls remain
    /// correct (and remain deterministic) either way.
    pub fn run_rounds(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(self.partitions.len()).max(1);
        if workers == 1 {
            for _ in 0..n {
                for (i, p) in self.partitions.iter_mut().enumerate() {
                    p.drain_inbound(&self.mailboxes[i]);
                }
                for (i, p) in self.partitions.iter_mut().enumerate() {
                    p.run_round();
                    p.flush_outbox(i as u32, &self.home, &self.mailboxes);
                }
            }
        } else {
            let chunk = self.partitions.len().div_ceil(workers);
            let nchunks = self.partitions.len().div_ceil(chunk);
            let barrier = Barrier::new(nchunks);
            let home = &self.home;
            let mailboxes = &self.mailboxes;
            crossbeam::thread::scope(|s| {
                for (ci, parts) in self.partitions.chunks_mut(chunk).enumerate() {
                    let barrier = &barrier;
                    let base = ci * chunk;
                    s.spawn(move || {
                        for _ in 0..n {
                            for (j, p) in parts.iter_mut().enumerate() {
                                p.drain_inbound(&mailboxes[base + j]);
                            }
                            barrier.wait();
                            for (j, p) in parts.iter_mut().enumerate() {
                                p.run_round();
                                p.flush_outbox((base + j) as u32, home, mailboxes);
                            }
                            barrier.wait();
                        }
                    });
                }
            })
            .expect("worker panicked");
        }
        self.round += n;
    }
}

/// Ascending-id k-way merge over partitions' sorted node orders.
struct Merged<'a, P: Protocol> {
    /// `(partition, cursor into its order slice)` per partition.
    parts: Vec<(&'a Partition<P>, usize)>,
}

impl<'a, P: Protocol> Iterator for Merged<'a, P> {
    type Item = (NodeId, &'a P);

    fn next(&mut self) -> Option<Self::Item> {
        let mut best: Option<(usize, u64)> = None;
        for (k, (p, c)) in self.parts.iter().enumerate() {
            if let Some(&(id, _)) = p.order().get(*c) {
                if best.is_none_or(|(_, bid)| id < bid) {
                    best = Some((k, id));
                }
            }
        }
        let (k, _) = best?;
        let (p, c) = &mut self.parts[k];
        let (id, s) = p.order()[*c];
        *c += 1;
        Some((NodeId(id), p.proto_at(s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: forwards a token along `next`, counts everything.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Toy {
        next: NodeId,
        tokens_seen: u64,
        timeouts: u64,
    }

    #[derive(Clone, Debug)]
    struct Token(u32);

    impl Protocol for Toy {
        type Msg = Token;

        fn on_message(&mut self, ctx: &mut Ctx<'_, Token>, msg: Token) {
            self.tokens_seen += 1;
            if msg.0 > 0 {
                ctx.send(self.next, Token(msg.0 - 1));
            }
        }

        fn on_timeout(&mut self, _ctx: &mut Ctx<'_, Token>) {
            self.timeouts += 1;
        }

        fn msg_kind(_: &Token) -> &'static str {
            "token"
        }
    }

    /// `n` nodes in a ring, node `i` in partition `i % k`: every hop
    /// crosses a partition boundary (for `k > 1`).
    fn ring(n: u64, k: usize, threads: usize, seed: u64) -> PartitionedWorld<Toy> {
        let mut w = PartitionedWorld::new(seed, k, threads);
        for i in 0..n {
            w.add_node(
                NodeId(i),
                Toy {
                    next: NodeId((i + 1) % n),
                    tokens_seen: 0,
                    timeouts: 0,
                },
                (i % k as u64) as u32,
            );
        }
        w
    }

    #[test]
    fn cross_partition_token_is_delivered_exactly_ttl_plus_one_times() {
        let mut w = ring(12, 4, 2, 3);
        w.inject(NodeId(0), Token(25));
        for _ in 0..60 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 26);
        let crossed: u64 = (0..4).map(|i| w.cross_envelopes(i)).sum();
        assert!(crossed >= 25, "ring hops must cross partitions");
        assert_eq!(w.metrics().kind("token"), 26);
    }

    #[test]
    fn results_are_identical_for_every_thread_count() {
        let run = |threads: usize| {
            let mut w = ring(24, 6, threads, 7);
            w.inject(NodeId(5), Token(200));
            w.run_rounds(80);
            let states: Vec<(NodeId, Toy)> =
                w.iter().map(|(id, t)| (id, t.clone())).collect();
            let per_part: Vec<Metrics> =
                (0..6).map(|i| w.partition_metrics(i).clone()).collect();
            let peaks: Vec<usize> =
                (0..6).map(|i| w.partition_peak_in_flight(i)).collect();
            let locks: Vec<u64> =
                (0..6).map(|i| w.partition_lock_acquisitions(i)).collect();
            let stepped: Vec<u64> =
                (0..6).map(|i| w.partition_stepped(i)).collect();
            (
                states,
                per_part,
                peaks,
                locks,
                stepped,
                w.peak_in_flight(),
                w.metrics(),
            )
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn batched_flush_takes_at_most_partitions_squared_locks_per_round() {
        // Every ring hop crosses a partition boundary, so the old
        // per-envelope locking would take ~1 lock per delivered token
        // hop; the batched flush must stay within the structural bound
        // of (drains + pairwise flushes) per round. Two long-lived
        // tokens per node keep ~48 envelopes crossing every round.
        let mut w = ring(24, 6, 2, 7);
        for i in 0..24 {
            w.inject(NodeId(i), Token(10_000));
            w.inject(NodeId(i), Token(10_000));
        }
        let rounds = 80u64;
        w.run_rounds(rounds);
        let locks = w.lock_acquisitions();
        let parts = w.partition_count() as u64;
        // Per round: one drain lock per partition plus at most one
        // flush lock per ordered partition pair.
        let bound = rounds * (parts + parts * parts);
        assert!(
            locks <= bound,
            "lock acquisitions {locks} exceed structural bound {bound}"
        );
        // And the batching must actually beat per-envelope locking.
        let envelopes: u64 = (0..6).map(|i| w.cross_envelopes(i)).sum();
        assert!(
            locks < envelopes,
            "batched flush ({locks} locks) must undercut per-envelope \
             locking ({envelopes} envelopes)"
        );
    }

    #[test]
    fn single_round_stepping_equals_batched_stepping() {
        let mut a = ring(10, 3, 4, 11);
        let mut b = ring(10, 3, 4, 11);
        a.inject(NodeId(0), Token(40));
        b.inject(NodeId(0), Token(40));
        for _ in 0..30 {
            a.run_round();
        }
        b.run_rounds(30);
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.round(), b.round());
    }

    #[test]
    fn budgeted_partitioned_run_still_delivers_and_caps_per_round() {
        let mut w = ring(8, 4, 2, 31);
        w.set_delivery_budget(Some(1));
        assert_eq!(w.delivery_budget(), Some(1));
        w.inject(NodeId(0), Token(20));
        for _ in 0..80 {
            w.run_round();
        }
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 21, "budgeted rounds must still deliver all hops");
        assert!(w.peak_in_flight() >= 1);
    }

    #[test]
    fn crash_consumes_in_flight_envelopes() {
        let mut w = ring(6, 3, 2, 13);
        w.inject(NodeId(0), Token(30));
        w.run_round();
        // Node 1 (partition 1) has an envelope in flight; crash it.
        w.crash(NodeId(1));
        assert!(!w.is_alive(NodeId(1)));
        let before = w.len();
        for _ in 0..20 {
            w.run_round();
        }
        assert_eq!(w.len(), before);
        // The token died at the crash; nobody past node 0 saw it twice.
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert!(total <= 2, "token must stop at the crashed hop");
        assert!(w.metrics().dropped >= 1);
    }

    #[test]
    fn with_node_routes_across_partitions() {
        let mut w = ring(4, 2, 1, 17);
        // Node 0 (partition 0) sends to node 1 (partition 1) outside a
        // round: the envelope must arrive with one round of latency.
        w.with_node(NodeId(0), |_t, ctx| ctx.send(NodeId(1), Token(0)))
            .unwrap();
        assert_eq!(w.in_flight(), 1);
        w.run_round();
        assert_eq!(w.node(NodeId(1)).unwrap().tokens_seen, 1);
    }

    #[test]
    fn inject_to_unknown_id_counts_like_the_serial_world() {
        let mut w = ring(4, 2, 1, 19);
        let before = w.metrics();
        w.inject(NodeId(99), Token(0));
        let after = w.metrics();
        // Serial `World::inject` to a dead id counts the send (and its
        // kind) before dropping; the partitioned world must agree.
        assert_eq!(after.dropped, before.dropped + 1);
        assert_eq!(after.sent_total, before.sent_total + 1);
        assert_eq!(after.kind("token"), before.kind("token") + 1);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_across_partitions_panics() {
        let mut w = ring(4, 2, 1, 23);
        w.add_node(
            NodeId(0),
            Toy {
                next: NodeId(0),
                tokens_seen: 0,
                timeouts: 0,
            },
            1,
        );
    }

    #[test]
    fn iter_merges_partitions_in_id_order() {
        let w = ring(9, 4, 1, 29);
        let ids: Vec<u64> = w.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, (0..9).collect::<Vec<u64>>());
        assert_eq!(w.ids().len(), 9);
        assert_eq!(w.partition_of(NodeId(5)), Some(1));
    }

    /// Moving a node between partitions carries its protocol state, its
    /// pending channel contents, and any in-flight mailbox envelopes —
    /// a token circulating a ring must survive the hop count exactly,
    /// no matter when its holder is moved.
    #[test]
    fn move_node_preserves_state_channels_and_in_flight_envelopes() {
        let run = |move_at: Option<u64>| -> (Vec<u64>, u64) {
            let mut w = ring(6, 3, 1, 31);
            w.inject(NodeId(0), Token(20));
            for r in 0..40 {
                if move_at == Some(r) {
                    // Mid-run: node 1 may hold queued channel messages
                    // and have envelopes in flight toward it.
                    w.move_node(NodeId(1), 2);
                    assert_eq!(w.partition_of(NodeId(1)), Some(2));
                }
                w.run_round();
            }
            let seen: Vec<u64> = w.iter().map(|(_, t)| t.tokens_seen).collect();
            let total = seen.iter().sum::<u64>();
            (seen, total)
        };
        let (baseline_seen, baseline_total) = run(None);
        assert_eq!(baseline_total, 21, "token must make exactly 21 hops");
        for move_at in [0, 3, 7, 15] {
            let (seen, total) = run(Some(move_at));
            assert_eq!(
                total, baseline_total,
                "move at round {move_at} lost or duplicated deliveries"
            );
            assert_eq!(
                seen, baseline_seen,
                "move at round {move_at} changed per-node delivery counts"
            );
        }
    }

    fn storm_spec() -> crate::FaultSpec {
        crate::FaultSpec {
            seed: 77,
            rules: vec![
                crate::FaultRule {
                    from_round: 5,
                    to_round: 30,
                    link: crate::LinkClass::All,
                    drop: 0.2,
                    dup: 0.1,
                    delay: 0.15,
                    delay_rounds: 2,
                    reorder: 0.1,
                    reorder_max: 3,
                },
                crate::FaultRule {
                    drop: 0.5,
                    ..crate::FaultRule::pass(10, 20, crate::LinkClass::Cross { src: 0, dst: 1 })
                },
            ],
            severs: vec![crate::Sever {
                from_round: 12,
                to_round: 18,
                group: vec![2, 3],
            }],
        }
    }

    #[test]
    fn faulted_results_are_identical_for_every_thread_count() {
        let run = |threads: usize| {
            let mut w = ring(24, 6, threads, 7);
            w.set_faults(Some(storm_spec()));
            w.inject(NodeId(5), Token(400));
            w.inject(NodeId(11), Token(400));
            w.run_rounds(80);
            let states: Vec<(NodeId, Toy)> =
                w.iter().map(|(id, t)| (id, t.clone())).collect();
            let per_part: Vec<crate::FaultCounts> =
                (0..6).map(|i| w.partition_fault_counts(i)).collect();
            (states, per_part, w.fault_counts(), w.metrics(), w.in_flight())
        };
        let reference = run(1);
        let total = reference.2;
        assert!(
            total.dropped_by_fault > 0
                && total.duplicated > 0
                && total.delayed > 0
                && total.reordered > 0,
            "storm spec must exercise every fault kind: {total:?}"
        );
        // Per-partition counts must sum to the aggregate.
        let mut summed = crate::FaultCounts::default();
        for c in &reference.1 {
            summed.merge(c);
        }
        assert_eq!(summed, total);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), reference, "threads={threads} diverged");
        }
    }

    /// Arming an *empty* spec must not perturb anything: fault streams
    /// are separate from the protocol RNG and a no-match lookup
    /// consumes no draws.
    #[test]
    fn empty_fault_plane_is_byte_identical_to_no_plane() {
        let run = |armed: bool| {
            let mut w = ring(12, 3, 2, 9);
            if armed {
                w.set_faults(Some(crate::FaultSpec::default()));
            }
            w.inject(NodeId(0), Token(60));
            w.run_rounds(40);
            let states: Vec<(NodeId, Toy)> =
                w.iter().map(|(id, t)| (id, t.clone())).collect();
            (states, w.metrics())
        };
        assert_eq!(run(true), run(false));
    }

    /// A `drop: 1.0` rule on a group's boundary edge set is
    /// byte-identical to the equivalent scheduled sever: both consume
    /// zero draws and drop at the same sender-side point.
    #[test]
    fn full_drop_group_rule_equals_scheduled_sever() {
        let group = vec![1u64, 2, 4];
        let run = |spec: crate::FaultSpec| {
            let mut w = ring(12, 4, 2, 21);
            w.set_faults(Some(spec));
            w.inject(NodeId(0), Token(500));
            w.inject(NodeId(6), Token(500));
            w.run_rounds(50);
            let states: Vec<(NodeId, Toy)> =
                w.iter().map(|(id, t)| (id, t.clone())).collect();
            (states, w.metrics(), w.fault_counts())
        };
        let as_rule = run(crate::FaultSpec {
            seed: 3,
            rules: vec![crate::FaultRule {
                drop: 1.0,
                ..crate::FaultRule::pass(10, 25, crate::LinkClass::Group(group.clone()))
            }],
            severs: vec![],
        });
        let as_sever = run(crate::FaultSpec {
            seed: 3,
            rules: vec![],
            severs: vec![crate::Sever {
                from_round: 10,
                to_round: 25,
                group,
            }],
        });
        assert_eq!(as_rule, as_sever);
        assert!(as_rule.2.dropped_by_fault > 0, "the window must bite");
    }

    /// Pure delay (probability 1) holds every message but loses none:
    /// the token still makes all its hops, just later, and held
    /// messages count as in flight until released.
    #[test]
    fn full_delay_releases_everything_and_counts_in_flight() {
        let mut w = ring(6, 3, 2, 33);
        w.set_faults(Some(crate::FaultSpec {
            seed: 1,
            rules: vec![crate::FaultRule {
                delay: 1.0,
                delay_rounds: 4,
                ..crate::FaultRule::pass(0, 400, crate::LinkClass::All)
            }],
            severs: vec![],
        }));
        w.inject(NodeId(0), Token(10));
        w.run_rounds(3);
        assert!(w.in_flight() > 0, "held messages are still in flight");
        w.run_rounds(120);
        let total: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(total, 11, "delay must not lose hops");
        assert_eq!(w.in_flight(), 0);
        let c = w.fault_counts();
        assert_eq!(c.delayed, 10, "every forwarded hop was delayed: {c:?}");
        assert_eq!(c.dropped_by_fault, 0);
    }

    /// A sever window cuts boundary traffic while it is open and heals
    /// after: a token that must cross the cut stalls during the window
    /// (dropped hops) but post-heal traffic flows again.
    #[test]
    fn sever_window_cuts_then_heals() {
        let mut w = ring(4, 2, 1, 55);
        w.set_faults(Some(crate::FaultSpec {
            seed: 0,
            rules: vec![],
            severs: vec![crate::Sever {
                from_round: 0,
                to_round: 10,
                group: vec![0, 2],
            }],
        }));
        // Ring 0→1→2→3→0: every hop crosses the {0,2} boundary.
        w.inject(NodeId(0), Token(100));
        w.run_rounds(10);
        let during: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(during, 1, "token dies on its first severed hop");
        assert!(w.fault_counts().dropped_by_fault >= 1);
        // Healed: a fresh token circulates freely.
        w.inject(NodeId(0), Token(20));
        w.run_rounds(40);
        let after: u64 = w.iter().map(|(_, t)| t.tokens_seen).sum();
        assert_eq!(after, during + 21, "post-heal hops must all land");
    }

    /// A move to the node's current partition and a move of an unknown
    /// id are both no-ops; a move to an out-of-range partition panics.
    #[test]
    fn move_node_edge_cases() {
        let mut w = ring(4, 2, 1, 37);
        w.move_node(NodeId(1), 1); // already home
        assert_eq!(w.partition_of(NodeId(1)), Some(1));
        w.move_node(NodeId(99), 0); // unknown id
        assert_eq!(w.partition_of(NodeId(99)), None);
        let moved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.move_node(NodeId(0), 7)
        }));
        assert!(moved.is_err(), "out-of-range partition must panic");
    }
}
