//! Publications: the data items disseminated through a topic.

use skippub_bits::{publication_key, BitStr};
use std::fmt;
use std::sync::Arc;

/// Default publication-key length `m` in bits (paper §4.2: a constant `m`
/// known to all subscribers so every key has the same length).
pub const DEFAULT_KEY_BITS: usize = 64;

/// A publication `p ∈ P*` together with its unique key
/// `h̄_m(author, payload)`.
///
/// The key is derived, never chosen: two subscribers that independently
/// receive the same `(author, payload)` pair compute the same key, which is
/// what lets Patricia-trie hashes agree once the publication sets agree.
///
/// The payload is reference-counted (`Arc<[u8]>`): cloning a publication —
/// which flooding does once per edge and every subscriber's trie does once
/// on insert — shares a single payload allocation instead of re-copying
/// the bytes. Combined with the inline `BitStr` key (≤ 64 bits, no heap),
/// a clone allocates nothing. Equality and hashing are by value (key,
/// author, payload bytes), unchanged from the owned-`Vec` representation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Publication {
    key: BitStr,
    author: u64,
    payload: Arc<[u8]>,
}

impl Publication {
    /// Creates a publication by `author` with `payload`, deriving the key
    /// with the default key length.
    pub fn new(author: u64, payload: impl Into<Vec<u8>>) -> Self {
        Self::with_key_bits(author, payload, DEFAULT_KEY_BITS)
    }

    /// Creates a publication with an explicit key length `m ∈ 1..=128`.
    pub fn with_key_bits(author: u64, payload: impl Into<Vec<u8>>, m: usize) -> Self {
        Self::from_shared(author, Arc::from(payload.into()), m)
    }

    /// Creates a publication from an already-shared payload (e.g. one
    /// handed out by [`PayloadInterner`](crate::PayloadInterner)) without
    /// copying the bytes.
    pub fn from_shared(author: u64, payload: Arc<[u8]>, m: usize) -> Self {
        let key = publication_key(author, &payload, m);
        Publication {
            key,
            author,
            payload,
        }
    }

    /// Test/fixture constructor with a hand-picked key — used to reproduce
    /// the paper's Figure 2, where publications carry literal 3-bit keys
    /// `000, 010, 100, 101`. Not used by the protocol itself.
    pub fn with_raw_key(key: BitStr, author: u64, payload: impl Into<Vec<u8>>) -> Self {
        Publication {
            key,
            author,
            payload: Arc::from(payload.into()),
        }
    }

    /// The trie key (leaf label) of this publication.
    #[inline]
    pub fn key(&self) -> &BitStr {
        &self.key
    }

    /// ID of the subscriber that generated the publication.
    #[inline]
    pub fn author(&self) -> u64 {
        self.author
    }

    /// The published content.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The shared payload handle. Cloning it bumps a refcount instead of
    /// copying bytes — callers that fan a payload out (delivery cursors,
    /// floods) should prefer this over `payload().to_vec()`.
    #[inline]
    pub fn shared_payload(&self) -> &Arc<[u8]> {
        &self.payload
    }
}

impl fmt::Debug for Publication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pub[{} by {} ({} B)]",
            self.key,
            self.author,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_are_stable_and_distinct() {
        let a = Publication::new(1, b"breaking news".to_vec());
        let b = Publication::new(1, b"breaking news".to_vec());
        let c = Publication::new(2, b"breaking news".to_vec());
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_eq!(a.key().len(), DEFAULT_KEY_BITS);
    }

    #[test]
    fn raw_key_constructor() {
        let p = Publication::with_raw_key("101".parse().unwrap(), 9, b"x".to_vec());
        assert_eq!(p.key().to_string(), "101");
        assert_eq!(p.author(), 9);
        assert_eq!(p.payload(), b"x");
    }

    #[test]
    fn custom_key_bits() {
        let p = Publication::with_key_bits(3, b"y".to_vec(), 17);
        assert_eq!(p.key().len(), 17);
    }
}
