//! # skippub-trie
//!
//! The hashed **Patricia trie** of paper §4.2: each subscriber `v` stores
//! its publications in a trie `v.T` whose leaves hold publications keyed by
//! `h̄_m(author, payload)` and whose inner nodes carry Merkle-style hashes
//! (`t.hash = h(c₁.hash ∘ c₂.hash)`), so that two subscribers can detect
//! *and localize* differences between their publication sets by exchanging
//! only `(label, hash)` summaries.
//!
//! The crate provides:
//!
//! * [`Publication`] — a published datum plus its derived key.
//! * [`PatriciaTrie`] — the trie itself with the exact query surface the
//!   anti-entropy protocol of Algorithm 5 needs: node lookup by label,
//!   child summaries, minimal-cover search (case (iii) of `CheckTrie`),
//!   prefix enumeration.
//! * [`check`](PatriciaTrie::check) — the pure decision function behind a
//!   received `CheckTrie(label, hash)` tuple, returning what Algorithm 5
//!   would respond.
//! * [`sync`] — a two-party driver that runs the full message exchange
//!   between two tries locally (used by tests and experiments E2/E8).
//! * [`PayloadInterner`] — deduplicates payload bytes across
//!   independently constructed publications so repeated payloads share a
//!   single `Arc<[u8]>` allocation.
//! * [`TrieDb`] / [`MemoryTrieDb`] — node-addressed storage: tries are
//!   committed post-order under their Merkle hashes
//!   ([`PatriciaTrie::commit_to`]) and reopened from a root hash alone
//!   ([`PatriciaTrie::open_from`]), the layer world snapshots persist
//!   publication stores through.
//! * [`TrieBatch`] — skeleton commits: a batch of inserts applied
//!   structurally with each touched internal hash recomputed exactly
//!   once, equivalent to (and much cheaper than) the insert loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod intern;
mod publication;
pub mod sync;
mod trie;

pub use db::{MemoryTrieDb, StoredNode, TrieBatch, TrieDb, TrieDbError};
pub use intern::PayloadInterner;
pub use publication::Publication;
pub use trie::{CheckOutcome, NodeSummary, PatriciaTrie, PubIter};
