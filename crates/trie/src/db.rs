//! Node-addressed trie storage: the pluggable layer that lets a
//! [`PatriciaTrie`](crate::PatriciaTrie) be **committed to** and
//! **reopened from** a backing store by root hash alone.
//!
//! The design follows ethrex's pluggable `TrieDB` (an in-memory map
//! today, a persistent store tomorrow) rather than serializing trie
//! *structure*: every node is stored under its Merkle hash, so
//!
//! * equal subtries stored by different tries **deduplicate** — after
//!   anti-entropy convergence all subscribers of a topic hold identical
//!   tries, and a world snapshot stores that trie's nodes exactly once;
//! * a root hash is a complete, self-authenticating address: reopening
//!   walks `root → children` fetches and re-verifies every hash on the
//!   way up (a corrupted store surfaces as [`TrieDbError::Corrupt`], not
//!   as silently wrong state);
//! * two tries opened from the same root hash are byte-identical, the
//!   precondition for twin-trie differential tests (SNIPPETS.md #3).
//!
//! Because a node's address *is* its hash, the store is append-only and
//! first-writer-wins: a `put` under an existing hash is a no-op. Node
//! hashes cover publication **keys** only (a leaf hashes its label, an
//! inner node its children's hashes — paper §4.2), which is safe for
//! production keys derived from `(author, payload)` via
//! [`publication_key`](skippub_bits::publication_key); hand-built
//! [`Publication::with_raw_key`](crate::Publication::with_raw_key)
//! publications that give two different payloads the same key would
//! collide in the store exactly as they do inside a single trie.

use crate::Publication;
use skippub_bits::Hash128;
use std::collections::BTreeMap;

/// One trie node in node-addressed form, stored under its Merkle hash.
///
/// An inner node's label is *not* stored: it is the longest common
/// prefix of its children's labels and is re-derived on open, so the
/// store cannot hold a label inconsistent with the structure.
#[derive(Clone, Debug, PartialEq)]
pub enum StoredNode {
    /// A leaf: the publication itself (its key is the node label).
    Leaf(Publication),
    /// An inner node: the hashes of its bit-0 and bit-1 children.
    Inner {
        /// Hash of the child whose label continues with bit 0.
        left: Hash128,
        /// Hash of the child whose label continues with bit 1.
        right: Hash128,
    },
}

impl StoredNode {
    /// The Merkle hash this node is addressed by: `h(label)` for a
    /// leaf, `h(left ∘ right)` for an inner node (paper §4.2).
    pub fn hash(&self) -> Hash128 {
        match self {
            StoredNode::Leaf(p) => Hash128::leaf(p.key()),
            StoredNode::Inner { left, right } => Hash128::combine(*left, *right),
        }
    }
}

/// Errors surfaced while reopening a trie from a [`TrieDb`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrieDbError {
    /// A node referenced by hash is absent from the store.
    Missing(Hash128),
    /// A fetched node fails re-verification (its content does not hash
    /// to its address, or the reassembled structure is invalid).
    Corrupt(String),
}

impl std::fmt::Display for TrieDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrieDbError::Missing(h) => write!(f, "trie node {h} missing from store"),
            TrieDbError::Corrupt(why) => write!(f, "corrupt trie store: {why}"),
        }
    }
}

impl std::error::Error for TrieDbError {}

/// A node-addressed trie store: `hash → node`, append-only.
///
/// [`MemoryTrieDb`] is the in-memory implementation; the trait exists so
/// a persistent backend can slot in without touching the trie
/// (ROADMAP follow-up).
pub trait TrieDb {
    /// Fetches the node addressed by `hash` (a cheap clone: labels are
    /// inline up to 64 bits and payloads are `Arc`-shared).
    fn get(&self, hash: Hash128) -> Option<StoredNode>;

    /// Stores `node` under `hash`. First writer wins: storing under an
    /// already-present hash is a no-op (equal hashes address equal
    /// nodes up to 128-bit collisions).
    fn put(&mut self, hash: Hash128, node: StoredNode);

    /// Whether a node is stored under `hash` (used to prune commits of
    /// already-stored subtries without cloning them out).
    fn contains(&self, hash: Hash128) -> bool {
        self.get(hash).is_some()
    }

    /// Number of stored nodes.
    fn node_count(&self) -> usize;
}

/// The in-memory [`TrieDb`]: a sorted map, so iteration (and therefore
/// snapshot serialization of the node store) is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryTrieDb {
    nodes: BTreeMap<u128, StoredNode>,
}

impl MemoryTrieDb {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over `(hash, node)` pairs in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (Hash128, &StoredNode)> {
        self.nodes.iter().map(|(&h, n)| (Hash128(h), n))
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl TrieDb for MemoryTrieDb {
    fn get(&self, hash: Hash128) -> Option<StoredNode> {
        self.nodes.get(&hash.0).cloned()
    }

    fn put(&mut self, hash: Hash128, node: StoredNode) {
        debug_assert_eq!(node.hash(), hash, "node stored under a foreign hash");
        self.nodes.entry(hash.0).or_insert(node);
    }

    fn contains(&self, hash: Hash128) -> bool {
        self.nodes.contains_key(&hash.0)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A batch of publications applied to a trie in one **skeleton commit**
/// (the starkware committer pattern): every insert is performed
/// *structurally* first — splicing leaves and split nodes into place
/// without touching ancestor hashes — and a single post-order pass then
/// recomputes each touched internal hash **exactly once**. A per-insert
/// loop instead rehashes the whole root path on every insert, so a
/// batch of `k` inserts sharing paths near the root repeats that work
/// `O(k · depth)` times.
///
/// `apply` is proven equivalent to the insert loop (same resulting
/// root hash, length, and structure) by proptest in
/// `tests/prop_trie_db.rs`.
///
/// ```
/// use skippub_trie::{PatriciaTrie, Publication, TrieBatch};
///
/// let mut batched = PatriciaTrie::new();
/// let mut looped = PatriciaTrie::new();
/// let mut batch = TrieBatch::new();
/// for author in 0..100 {
///     let p = Publication::new(author, b"tick".to_vec());
///     batch.push(p.clone());
///     looped.insert(p);
/// }
/// assert_eq!(batch.apply(&mut batched), 100);
/// assert_eq!(batched.root_hash(), looped.root_hash());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TrieBatch {
    pubs: Vec<Publication>,
}

impl TrieBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues one publication.
    pub fn push(&mut self, publication: Publication) {
        self.pubs.push(publication);
    }

    /// Number of queued publications (duplicates included).
    pub fn len(&self) -> usize {
        self.pubs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pubs.is_empty()
    }

    /// Applies the batch to `trie`; returns how many publications were
    /// newly inserted (duplicates and key-length mismatches are
    /// rejected exactly as by [`crate::PatriciaTrie::insert`]).
    pub fn apply(self, trie: &mut crate::PatriciaTrie) -> usize {
        trie.apply_batch(self.pubs)
    }
}

/// Extension helpers used by tests and benches to build batches.
impl FromIterator<Publication> for TrieBatch {
    fn from_iter<I: IntoIterator<Item = Publication>>(iter: I) -> Self {
        TrieBatch {
            pubs: iter.into_iter().collect(),
        }
    }
}
