//! Payload interning: one allocation per distinct payload, process-wide
//! sharing via `Arc`.
//!
//! Publication payloads are hash-derived duplicates by design — the same
//! `(author, payload)` pair always maps to the same key, repeated template
//! payloads (heartbeats, topic banners, benchmark workloads) recur across
//! publishes, and every subscriber of a topic stores its own copy of each
//! publication. [`Publication`](crate::Publication) already shares one
//! payload allocation across all clones of a *single* publication; the
//! interner extends that to *independently constructed* duplicates: a
//! backend routes every published payload through [`PayloadInterner::intern`]
//! and equal byte strings collapse to one `Arc<[u8]>` no matter how many
//! authors or topics they appear under.

use std::collections::HashSet;
use std::sync::Arc;

/// Deduplicating pool of shared payloads.
///
/// `intern` returns a refcounted handle; equal inputs return clones of the
/// same allocation. The pool holds one strong reference per distinct
/// payload for the lifetime of the interner (publications are never
/// retracted in the paper's model, so no eviction is needed).
#[derive(Default, Debug)]
pub struct PayloadInterner {
    pool: HashSet<Arc<[u8]>>,
    hits: u64,
}

impl PayloadInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared handle for `payload`, inserting it into the pool
    /// on first sight.
    pub fn intern(&mut self, payload: Vec<u8>) -> Arc<[u8]> {
        if let Some(existing) = self.pool.get(payload.as_slice()) {
            self.hits += 1;
            return Arc::clone(existing);
        }
        let shared: Arc<[u8]> = Arc::from(payload);
        self.pool.insert(Arc::clone(&shared));
        shared
    }

    /// Inserts an already-shared payload into the pool without counting
    /// a hit — checkpoint restore re-seeds the pool from the payloads
    /// of restored publications. Returns the pooled handle: if equal
    /// bytes are already pooled the existing allocation wins, so
    /// re-seeding also re-unifies duplicates that deserialization
    /// materialized separately.
    pub fn adopt(&mut self, payload: Arc<[u8]>) -> Arc<[u8]> {
        if let Some(existing) = self.pool.get(&*payload) {
            return Arc::clone(existing);
        }
        self.pool.insert(Arc::clone(&payload));
        payload
    }

    /// Overwrites the hit gauge (restored from a snapshot, where the
    /// pre-snapshot hit count is part of the saved state).
    pub fn set_hits(&mut self, hits: u64) {
        self.hits = hits;
    }

    /// Iterates the pooled payloads in arbitrary order (checkpointing
    /// sorts them; the pool itself is an unordered set).
    pub fn payloads(&self) -> impl Iterator<Item = &Arc<[u8]>> {
        self.pool.iter()
    }

    /// Number of distinct payloads in the pool.
    pub fn unique(&self) -> usize {
        self.pool.len()
    }

    /// Number of `intern` calls that were satisfied by an existing entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total payload bytes held by the pool (one copy per distinct
    /// payload; without interning, callers would hold one copy per call).
    pub fn pooled_bytes(&self) -> usize {
        self.pool.iter().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_payloads_share_one_allocation() {
        let mut pool = PayloadInterner::new();
        let a = pool.intern(b"breaking news".to_vec());
        let b = pool.intern(b"breaking news".to_vec());
        let c = pool.intern(b"other".to_vec());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.unique(), 2);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.pooled_bytes(), b"breaking news".len() + b"other".len());
    }

    #[test]
    fn interned_publications_share_payload_storage() {
        let mut pool = PayloadInterner::new();
        let p1 = crate::Publication::from_shared(1, pool.intern(b"tick".to_vec()), 64);
        let p2 = crate::Publication::from_shared(2, pool.intern(b"tick".to_vec()), 64);
        // Different authors → different keys, but one payload allocation.
        assert_ne!(p1.key(), p2.key());
        assert!(Arc::ptr_eq(p1.shared_payload(), p2.shared_payload()));
        assert_eq!(pool.unique(), 1);
    }

    #[test]
    fn clones_of_a_publication_share_the_pool_entry() {
        let mut pool = PayloadInterner::new();
        let p = crate::Publication::from_shared(7, pool.intern(vec![9; 100]), 64);
        let flood_copy = p.clone();
        let trie_copy = p.clone();
        assert!(Arc::ptr_eq(p.shared_payload(), flood_copy.shared_payload()));
        assert!(Arc::ptr_eq(p.shared_payload(), trie_copy.shared_payload()));
        // Strong count: pool + p + 2 clones.
        assert_eq!(Arc::strong_count(p.shared_payload()), 4);
    }
}
