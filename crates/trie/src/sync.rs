//! Two-party anti-entropy driver (Algorithm 5, run locally).
//!
//! This module executes the paper's `CheckTrie` / `CheckAndPublish` /
//! `Publish` exchange between two in-memory tries, without a network. It
//! serves three purposes:
//!
//! 1. unit-level validation of the message semantics (including the exact
//!    Figure 2 walk-through, experiment E2);
//! 2. measuring message/publication counts of a single pairwise
//!    reconciliation (experiment E8's inner loop);
//! 3. a reference implementation the networked protocol in `skippub-core`
//!    is differentially tested against.

use crate::{CheckOutcome, NodeSummary, PatriciaTrie, Publication};
use std::collections::VecDeque;

/// Which of the two parties a message is addressed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Party {
    /// The initiating trie (argument `a` of [`sync_pair`]).
    A,
    /// The responding trie (argument `b` of [`sync_pair`]).
    B,
}

impl Party {
    /// The other party.
    pub fn other(self) -> Party {
        match self {
            Party::A => Party::B,
            Party::B => Party::A,
        }
    }
}

/// One in-flight message of the Algorithm-5 exchange.
#[derive(Clone, Debug)]
pub enum SyncMsg {
    /// `CheckTrie(sender, tuples)` — compare these node summaries.
    Check {
        /// Addressee.
        to: Party,
        /// Node summaries to compare (Algorithm 5 handles a child pair as
        /// two tuples of one request).
        tuples: Vec<NodeSummary>,
    },
    /// `CheckAndPublish(sender, tuples, pf)` — continue checking at
    /// `tuples` *and* send back all publications with prefix `pf`.
    CheckAndPublish {
        /// Addressee.
        to: Party,
        /// Zero or one cover summaries to keep checking.
        tuples: Vec<NodeSummary>,
        /// Prefix of publications the sender is missing.
        prefix: skippub_bits::BitStr,
    },
    /// `Publish(P)` — deliver publications.
    Publish {
        /// Addressee.
        to: Party,
        /// The publications.
        pubs: Vec<Publication>,
    },
}

/// Statistics of one reconciliation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Number of `CheckTrie` messages exchanged.
    pub check_msgs: usize,
    /// Number of `CheckAndPublish` messages exchanged.
    pub check_and_publish_msgs: usize,
    /// Number of `Publish` messages exchanged.
    pub publish_msgs: usize,
    /// Total publications shipped inside `Publish` messages.
    pub publications_sent: usize,
    /// Number of root-to-root initiations performed.
    pub initiations: usize,
    /// Whether the tries ended with equal root hashes.
    pub converged: bool,
}

/// Processes one received message at the addressed trie, pushing any
/// responses onto `queue`. Returns the number of publications inserted.
fn handle(
    a: &mut PatriciaTrie,
    b: &mut PatriciaTrie,
    msg: SyncMsg,
    queue: &mut VecDeque<SyncMsg>,
    stats: &mut SyncStats,
) -> usize {
    let (to, tuples, prefix, pubs) = match msg {
        SyncMsg::Check { to, tuples } => (to, tuples, None, Vec::new()),
        SyncMsg::CheckAndPublish { to, tuples, prefix } => (to, tuples, Some(prefix), Vec::new()),
        SyncMsg::Publish { to, pubs } => (to, Vec::new(), None, pubs),
    };
    let me: &mut PatriciaTrie = match to {
        Party::A => a,
        Party::B => b,
    };
    let mut inserted = 0usize;
    for p in pubs {
        if me.insert(p) {
            inserted += 1;
        }
    }
    // CheckAndPublish: ship everything under the requested prefix back.
    if let Some(pf) = prefix {
        let send: Vec<Publication> = me
            .publications_with_prefix(&pf)
            .into_iter()
            .cloned()
            .collect();
        if !send.is_empty() {
            stats.publish_msgs += 1;
            stats.publications_sent += send.len();
            queue.push_back(SyncMsg::Publish {
                to: to.other(),
                pubs: send,
            });
        }
    }
    // CheckTrie handling per tuple.
    for tuple in tuples {
        match me.check(&tuple) {
            CheckOutcome::Match | CheckOutcome::LeafConflict => {}
            CheckOutcome::Descend(c0, c1) => {
                stats.check_msgs += 1;
                queue.push_back(SyncMsg::Check {
                    to: to.other(),
                    tuples: vec![c0, c1],
                });
            }
            CheckOutcome::Missing {
                cover,
                publish_prefix,
            } => {
                stats.check_and_publish_msgs += 1;
                queue.push_back(SyncMsg::CheckAndPublish {
                    to: to.other(),
                    tuples: cover.into_iter().collect(),
                    prefix: publish_prefix,
                });
            }
        }
    }
    inserted
}

/// Runs one initiation: `from` sends its root summary to the other party
/// and the exchange is driven to quiescence. Returns accumulated stats.
pub fn initiate(a: &mut PatriciaTrie, b: &mut PatriciaTrie, from: Party, stats: &mut SyncStats) {
    stats.initiations += 1;
    let root = match from {
        Party::A => a.root_summary(),
        Party::B => b.root_summary(),
    };
    let Some(root) = root else { return };
    let mut queue = VecDeque::new();
    stats.check_msgs += 1;
    queue.push_back(SyncMsg::Check {
        to: from.other(),
        tuples: vec![root],
    });
    while let Some(msg) = queue.pop_front() {
        handle(a, b, msg, &mut queue, stats);
    }
}

/// Fully reconciles two tries by alternating initiations (the paper's
/// periodic `PublishTimeout`, §4.2 notes "it is important at which
/// subscriber the initial CheckTrie request is started" — alternating
/// covers both directions). Returns the stats; `converged` is true when
/// both root hashes agree (always, absent hash collisions, by Theorem 17).
pub fn sync_pair(a: &mut PatriciaTrie, b: &mut PatriciaTrie, max_initiations: usize) -> SyncStats {
    let mut stats = SyncStats::default();
    let mut from = Party::A;
    for _ in 0..max_initiations {
        if a.root_hash() == b.root_hash() {
            break;
        }
        initiate(a, b, from, &mut stats);
        from = from.other();
    }
    stats.converged = a.root_hash() == b.root_hash();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use skippub_bits::BitStr;

    fn bs(s: &str) -> BitStr {
        s.parse().unwrap()
    }

    fn raw(key: &str) -> Publication {
        Publication::with_raw_key(bs(key), 0, Vec::new())
    }

    fn figure2() -> (PatriciaTrie, PatriciaTrie) {
        let mut u = PatriciaTrie::new();
        for k in ["000", "010", "100", "101"] {
            u.insert(raw(k));
        }
        let mut v = PatriciaTrie::new();
        for k in ["000", "010", "100"] {
            v.insert(raw(k));
        }
        (u, v)
    }

    #[test]
    fn figure2_initiation_from_u_finds_nothing() {
        // Paper: "assume that u sends out a CheckTrie(u, ru) … Both
        // comparisons result in the hashes being equal, which ends the
        // chain of messages at subscriber u."
        let (mut u, mut v) = figure2();
        let mut stats = SyncStats::default();
        initiate(&mut u, &mut v, Party::A, &mut stats);
        assert_eq!(v.len(), 3, "v must not have learned P4 from this direction");
        // Exactly two Check messages: u→v root, v→u children.
        assert_eq!(stats.check_msgs, 2);
        assert_eq!(stats.publications_sent, 0);
    }

    #[test]
    fn figure2_initiation_from_v_delivers_p4() {
        // Paper: v initiates → u responds with children (0,·),(10,·); v
        // lacks "10" → CheckAndPublish(v, (100,h(P3)), 101) → u publishes
        // P4.
        let (mut u, mut v) = figure2();
        let mut stats = SyncStats::default();
        initiate(&mut u, &mut v, Party::B, &mut stats);
        assert_eq!(v.len(), 4, "P4 must arrive at v");
        assert!(v.contains_key(&bs("101")));
        assert_eq!(u.root_hash(), v.root_hash());
        assert_eq!(stats.check_and_publish_msgs, 1);
        assert_eq!(stats.publications_sent, 1);
    }

    #[test]
    fn sync_pair_converges_both_ways() {
        let (mut u, mut v) = figure2();
        let stats = sync_pair(&mut u, &mut v, 8);
        assert!(stats.converged);
        assert_eq!(u.root_hash(), v.root_hash());
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn sync_disjoint_sets() {
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        for k in ["0000", "0011", "0101"] {
            a.insert(raw(k));
        }
        for k in ["1000", "1011", "1110"] {
            b.insert(raw(k));
        }
        let stats = sync_pair(&mut a, &mut b, 16);
        assert!(stats.converged);
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 6);
        assert_eq!(a.keys(), b.keys());
    }

    #[test]
    fn sync_empty_vs_full() {
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        for i in 0..50u64 {
            a.insert(Publication::new(1, format!("{i}").into_bytes()));
        }
        let stats = sync_pair(&mut a, &mut b, 8);
        assert!(stats.converged);
        assert_eq!(b.len(), 50);
        assert_eq!(stats.publications_sent, 50);
    }

    #[test]
    fn sync_both_empty() {
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        let stats = sync_pair(&mut a, &mut b, 4);
        assert!(stats.converged);
        assert_eq!(stats.check_msgs, 0);
    }

    #[test]
    fn sync_identical_is_one_message() {
        let (mut u, _) = figure2();
        let mut v = u.clone();
        let stats = sync_pair(&mut u, &mut v, 4);
        assert!(stats.converged);
        assert_eq!(stats.check_msgs, 0, "equal root hashes short-circuit");
    }

    #[test]
    fn sync_overlapping_random_sets() {
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        for i in 0..120u64 {
            let p = Publication::new(i % 5, format!("msg{i}").into_bytes());
            if i % 3 != 0 {
                a.insert(p.clone());
            }
            if i % 3 != 1 {
                b.insert(p);
            }
        }
        let stats = sync_pair(&mut a, &mut b, 64);
        assert!(stats.converged, "stats: {stats:?}");
        assert_eq!(a.len(), 120);
        assert_eq!(b.len(), 120);
        a.debug_validate().unwrap();
        b.debug_validate().unwrap();
    }
}
