//! The hashed Patricia trie (paper §4.2).
//!
//! Structure invariants (checked by `debug_validate` in tests):
//!
//! * Every inner node has exactly two children (Patricia compression).
//! * A node's label is the longest common prefix of its children's labels;
//!   a leaf's label is its publication's key.
//! * `hash` of a leaf is `h(label)`; of an inner node
//!   `h(c₀.hash ∘ c₁.hash)` where `c₀` is the child whose label continues
//!   with bit 0.
//! * All leaf keys have the same length `m` (the paper's fixed-length
//!   publication keys); inserts violating this are rejected, which doubles
//!   as a corruption guard in adversarial starts.

use crate::db::{StoredNode, TrieDb, TrieDbError};
use crate::Publication;
use skippub_bits::{BitStr, Hash128};

/// A `(label, hash)` pair as shipped inside `CheckTrie` /
/// `CheckAndPublish` messages — the paper's "sending a node `t ∈ v.T`"
/// (§4.2: "we only store `t.label` and `t.hash` in the request").
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NodeSummary {
    /// Absolute node label (path from the conceptual root).
    pub label: BitStr,
    /// Merkle hash of the subtrie rooted at the node.
    pub hash: Hash128,
}

/// Receiver-side decision for one `CheckTrie` tuple (Algorithm 5, lines
/// 12–23).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Hashes agree — subtries identical, no response (case (i)).
    Match,
    /// Node found, hashes differ, node is inner — respond with a
    /// `CheckTrie` carrying both child summaries (case (ii)).
    Descend(NodeSummary, NodeSummary),
    /// Node found, hashes differ, node is a leaf. Impossible while all
    /// keys have equal length and hashing is collision-free; surfaces
    /// corrupted states. Algorithm 5 sends no response here.
    LeafConflict,
    /// No node with that label (case (iii)): respond with
    /// `CheckAndPublish(cover, publish_prefix)` — continue checking at
    /// `cover` (if any) and ask the peer to send every publication whose
    /// key starts with `publish_prefix`.
    Missing {
        /// The node `c` with minimal label length extending the received
        /// label, if one exists.
        cover: Option<NodeSummary>,
        /// Prefix of the publications the receiver is missing.
        publish_prefix: BitStr,
    },
}

#[derive(Clone, Debug)]
enum Kind {
    Leaf(Publication),
    /// Children indices: `[bit-0 child, bit-1 child]`.
    Inner([usize; 2]),
}

#[derive(Clone, Debug)]
struct Node {
    label: BitStr,
    hash: Hash128,
    kind: Kind,
}

/// The per-subscriber publication store `v.T`.
#[derive(Clone, Debug, Default)]
pub struct PatriciaTrie {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
    key_len: Option<usize>,
}

impl PatriciaTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored publications.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie holds no publications.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root summary, or `None` for an empty trie.
    pub fn root_summary(&self) -> Option<NodeSummary> {
        self.root.map(|r| self.summary(r))
    }

    /// Root hash, or `None` for an empty trie. Two tries hold the same
    /// publication *keys* iff their root hashes agree (up to 128-bit hash
    /// collisions).
    pub fn root_hash(&self) -> Option<Hash128> {
        self.root.map(|r| self.nodes[r].hash)
    }

    fn summary(&self, idx: usize) -> NodeSummary {
        NodeSummary {
            label: self.nodes[idx].label.clone(),
            hash: self.nodes[idx].hash,
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Inserts a publication. Returns `false` (leaving the trie unchanged)
    /// if its key is already present or has a different length than the
    /// established key length.
    pub fn insert(&mut self, publication: Publication) -> bool {
        self.insert_inner(publication, None)
    }

    /// Structural insert shared by [`PatriciaTrie::insert`] (eager: the
    /// root path is rehashed immediately) and the batched commit path
    /// (deferred: `dirty` marks every touched node and
    /// `recompute_hashes` settles each marked internal node exactly
    /// once per batch — the starkware skeleton-commit pattern).
    fn insert_inner(
        &mut self,
        publication: Publication,
        mut dirty: Option<&mut Vec<bool>>,
    ) -> bool {
        let key = publication.key().clone();
        if key.is_empty() {
            return false;
        }
        match self.key_len {
            None => self.key_len = Some(key.len()),
            Some(m) if m != key.len() => return false,
            Some(_) => {}
        }
        let Some(root) = self.root else {
            let hash = Hash128::leaf(&key);
            let idx = self.alloc(Node {
                label: key,
                hash,
                kind: Kind::Leaf(publication),
            });
            self.root = Some(idx);
            self.len = 1;
            return true;
        };

        // Descend, remembering the path for rehashing.
        let mut path: Vec<usize> = Vec::with_capacity(key.len().min(64));
        let mut cur = root;
        loop {
            let lcp = self.nodes[cur].label.common_prefix_len(&key);
            if lcp == self.nodes[cur].label.len() {
                if self.nodes[cur].label.len() == key.len() {
                    return false; // exact key already present
                }
                match self.nodes[cur].kind {
                    Kind::Leaf(_) => {
                        // cur.label is a proper prefix of key — impossible
                        // with equal-length keys; reject defensively.
                        return false;
                    }
                    Kind::Inner(children) => {
                        path.push(cur);
                        let bit = key.get(self.nodes[cur].label.len());
                        cur = children[bit as usize];
                    }
                }
            } else {
                // Diverge inside cur.label: split above cur.
                let prefix = key.prefix(lcp);
                let new_leaf_hash = Hash128::leaf(&key);
                let leaf = self.alloc(Node {
                    label: key.clone(),
                    hash: new_leaf_hash,
                    kind: Kind::Leaf(publication),
                });
                let key_bit = key.get(lcp);
                let mut children = [0usize; 2];
                children[key_bit as usize] = leaf;
                children[!key_bit as usize] = cur;
                let inner_hash =
                    Hash128::combine(self.nodes[children[0]].hash, self.nodes[children[1]].hash);
                let inner = self.alloc(Node {
                    label: prefix,
                    hash: inner_hash,
                    kind: Kind::Inner(children),
                });
                // Hook `inner` where `cur` used to hang.
                match path.last() {
                    None => self.root = Some(inner),
                    Some(&parent) => {
                        if let Kind::Inner(ref mut ch) = self.nodes[parent].kind {
                            for c in ch.iter_mut() {
                                if *c == cur {
                                    *c = inner;
                                }
                            }
                        }
                    }
                }
                self.len += 1;
                match dirty.as_deref_mut() {
                    None => self.rehash_path(&path),
                    Some(dirty) => {
                        // The new inner's hash was computed from child
                        // hashes that may themselves be stale within
                        // this batch; mark it and the whole root path
                        // for the single post-order settle.
                        Self::mark(dirty, inner);
                        for &idx in &path {
                            Self::mark(dirty, idx);
                        }
                    }
                }
                return true;
            }
        }
    }

    fn mark(dirty: &mut Vec<bool>, idx: usize) {
        if dirty.len() <= idx {
            dirty.resize(idx + 1, false);
        }
        dirty[idx] = true;
    }

    /// Applies a whole batch of inserts structurally, then recomputes
    /// each touched internal hash exactly once ([`crate::TrieBatch`]).
    pub(crate) fn apply_batch(&mut self, pubs: Vec<Publication>) -> usize {
        let mut dirty: Vec<bool> = vec![false; self.nodes.len()];
        let mut added = 0usize;
        for p in pubs {
            if self.insert_inner(p, Some(&mut dirty)) {
                added += 1;
            }
        }
        if added > 0 {
            if let Some(root) = self.root {
                self.recompute_hashes(root, &dirty);
            }
        }
        added
    }

    /// Post-order settle of a skeleton: recompute marked internal
    /// hashes bottom-up, pruning clean subtrees (their hashes are still
    /// valid). Leaf hashes are computed at creation and never go stale.
    fn recompute_hashes(&mut self, idx: usize, dirty: &[bool]) -> Hash128 {
        if !dirty.get(idx).copied().unwrap_or(false) {
            return self.nodes[idx].hash;
        }
        if let Kind::Inner([c0, c1]) = self.nodes[idx].kind {
            let h0 = self.recompute_hashes(c0, dirty);
            let h1 = self.recompute_hashes(c1, dirty);
            self.nodes[idx].hash = Hash128::combine(h0, h1);
        }
        self.nodes[idx].hash
    }

    fn rehash_path(&mut self, path: &[usize]) {
        for &idx in path.iter().rev() {
            if let Kind::Inner([c0, c1]) = self.nodes[idx].kind {
                self.nodes[idx].hash = Hash128::combine(self.nodes[c0].hash, self.nodes[c1].hash);
            }
        }
    }

    /// Whether a publication with this exact key is stored.
    pub fn contains_key(&self, key: &BitStr) -> bool {
        matches!(self.find_node(key), Some(idx) if matches!(self.nodes[idx].kind, Kind::Leaf(_)))
    }

    /// Index of the node with *exactly* this label (inner or leaf).
    fn find_node(&self, label: &BitStr) -> Option<usize> {
        let mut cur = self.root?;
        loop {
            let node = &self.nodes[cur];
            if node.label == *label {
                return Some(cur);
            }
            if !node.label.is_prefix_of(label) {
                return None;
            }
            match node.kind {
                Kind::Leaf(_) => return None,
                Kind::Inner(children) => {
                    // node.label is a proper prefix of label here.
                    let bit = label.get(node.label.len());
                    cur = children[bit as usize];
                }
            }
        }
    }

    /// The `(label, hash)` summary of the node with exactly this label.
    pub fn node_summary(&self, label: &BitStr) -> Option<NodeSummary> {
        self.find_node(label).map(|i| self.summary(i))
    }

    /// Child summaries `(c₀, c₁)` of the *inner* node with this label.
    pub fn children(&self, label: &BitStr) -> Option<(NodeSummary, NodeSummary)> {
        let idx = self.find_node(label)?;
        match self.nodes[idx].kind {
            Kind::Leaf(_) => None,
            Kind::Inner([c0, c1]) => Some((self.summary(c0), self.summary(c1))),
        }
    }

    /// The node `c` with minimal label length whose label *properly*
    /// extends `prefix` (`c.label = prefix ∘ b₁ ∘ … ∘ b_k`, `k ≥ 1`) —
    /// Algorithm 5 line 19.
    pub fn min_cover(&self, prefix: &BitStr) -> Option<NodeSummary> {
        let mut cur = self.root?;
        loop {
            let node = &self.nodes[cur];
            if prefix.is_prefix_of(&node.label) && node.label.len() > prefix.len() {
                return Some(self.summary(cur));
            }
            if node.label.len() >= prefix.len() {
                // Equal label (not a proper extension) — take the shorter
                // child; both properly extend `prefix`. Divergence — no
                // cover exists.
                if node.label == *prefix {
                    if let Kind::Inner([c0, c1]) = node.kind {
                        let (l0, l1) = (self.nodes[c0].label.len(), self.nodes[c1].label.len());
                        return Some(self.summary(if l0 <= l1 { c0 } else { c1 }));
                    }
                }
                return None;
            }
            if !node.label.is_prefix_of(prefix) {
                return None;
            }
            match node.kind {
                Kind::Leaf(_) => return None,
                Kind::Inner(children) => {
                    let bit = prefix.get(node.label.len());
                    cur = children[bit as usize];
                }
            }
        }
    }

    /// Index of the topmost node whose label extends-or-equals `prefix`
    /// — the root of the subtrie holding exactly the keys under
    /// `prefix`.
    fn prefix_top(&self, prefix: &BitStr) -> Option<usize> {
        let mut cur = self.root?;
        loop {
            let node = &self.nodes[cur];
            if prefix.is_prefix_of(&node.label) {
                return Some(cur);
            }
            if !node.label.is_prefix_of(prefix) {
                return None;
            }
            match node.kind {
                Kind::Leaf(_) => return None,
                Kind::Inner(children) => {
                    let bit = prefix.get(node.label.len());
                    cur = children[bit as usize];
                }
            }
        }
    }

    /// Borrowing iterator over the publications whose key starts with
    /// `prefix`, in key order. Clones nothing — the form the batch
    /// committer and snapshot serialization read publications with.
    pub fn iter_publications_with_prefix(&self, prefix: &BitStr) -> PubIter<'_> {
        PubIter {
            trie: self,
            stack: self.prefix_top(prefix).into_iter().collect(),
        }
    }

    /// All stored publications whose key starts with `prefix` (Algorithm 5
    /// line 27: "All publications with prefix pf from T_u") — a `Vec`
    /// wrapper over [`PatriciaTrie::iter_publications_with_prefix`] for
    /// callers that need a materialized slice.
    pub fn publications_with_prefix(&self, prefix: &BitStr) -> Vec<&Publication> {
        self.iter_publications_with_prefix(prefix).collect()
    }

    /// All stored publications in key order — a `Vec` wrapper over the
    /// borrowing [`PatriciaTrie::iter_publications`].
    pub fn publications(&self) -> Vec<&Publication> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter_publications());
        out
    }

    /// Borrowing depth-first iterator over stored publications in key
    /// order. Unlike [`PatriciaTrie::publications`] it materializes no
    /// `Vec` of references up front (only a small index stack), and
    /// unlike [`PatriciaTrie::keys`] it clones nothing — the form hot
    /// paths (event draining, convergence checking) iterate with.
    pub fn iter_publications(&self) -> PubIter<'_> {
        PubIter {
            trie: self,
            stack: self.root.into_iter().collect(),
        }
    }

    /// Borrowing iterator over stored keys in order — see
    /// [`PatriciaTrie::iter_publications`].
    pub fn iter_keys(&self) -> impl Iterator<Item = &BitStr> {
        self.iter_publications().map(|p| p.key())
    }

    /// All stored keys in order, cloned (testing/diagnostics; hot paths
    /// use the borrowing [`PatriciaTrie::iter_keys`]).
    pub fn keys(&self) -> Vec<BitStr> {
        self.iter_keys().cloned().collect()
    }

    /// Receiver-side handling of one `CheckTrie` tuple `(label, hash)` —
    /// the pure decision behind Algorithm 5 lines 12–23.
    pub fn check(&self, tuple: &NodeSummary) -> CheckOutcome {
        match self.find_node(&tuple.label) {
            Some(idx) => {
                let node = &self.nodes[idx];
                if node.hash == tuple.hash {
                    CheckOutcome::Match
                } else {
                    match node.kind {
                        Kind::Inner([c0, c1]) => {
                            CheckOutcome::Descend(self.summary(c0), self.summary(c1))
                        }
                        Kind::Leaf(_) => CheckOutcome::LeafConflict,
                    }
                }
            }
            None => match self.min_cover(&tuple.label) {
                Some(cover) => {
                    // c.label = l ∘ b₁ ∘ …; missing prefix is l ∘ (1−b₁).
                    let b1 = cover.label.get(tuple.label.len());
                    let publish_prefix = tuple.label.child(!b1);
                    CheckOutcome::Missing {
                        cover: Some(cover),
                        publish_prefix,
                    }
                }
                None => CheckOutcome::Missing {
                    cover: None,
                    publish_prefix: tuple.label.clone(),
                },
            },
        }
    }

    /// Commits the trie into a node-addressed store: every node is
    /// stored under its Merkle hash ([`StoredNode`]), post-order, and
    /// the root hash is returned (`None` for an empty trie). Subtries
    /// whose root hash is already present are pruned — across converged
    /// subscribers the shared trie is stored exactly once, and repeated
    /// commits of a slowly-growing trie only write the changed spine.
    pub fn commit_to(&self, db: &mut dyn TrieDb) -> Option<Hash128> {
        let root = self.root?;
        self.commit_node(root, db);
        Some(self.nodes[root].hash)
    }

    fn commit_node(&self, idx: usize, db: &mut dyn TrieDb) {
        let hash = self.nodes[idx].hash;
        if db.contains(hash) {
            return;
        }
        match &self.nodes[idx].kind {
            Kind::Leaf(p) => db.put(hash, StoredNode::Leaf(p.clone())),
            Kind::Inner([c0, c1]) => {
                self.commit_node(*c0, db);
                self.commit_node(*c1, db);
                db.put(
                    hash,
                    StoredNode::Inner {
                        left: self.nodes[*c0].hash,
                        right: self.nodes[*c1].hash,
                    },
                );
            }
        }
    }

    /// Reopens a trie from a root hash against a store previously
    /// written by [`PatriciaTrie::commit_to`]. Every fetched node is
    /// re-verified against its address on the way up (leaf hash,
    /// combine hash, child bit order, key lengths), so a corrupted or
    /// truncated store surfaces as an error instead of a silently wrong
    /// trie. Two tries opened from the same root hash are identical.
    pub fn open_from(db: &dyn TrieDb, root: Option<Hash128>) -> Result<Self, TrieDbError> {
        let mut trie = PatriciaTrie::new();
        if let Some(root_hash) = root {
            let idx = trie.load_node(db, root_hash)?;
            trie.root = Some(idx);
        }
        Ok(trie)
    }

    fn load_node(&mut self, db: &dyn TrieDb, hash: Hash128) -> Result<usize, TrieDbError> {
        match db.get(hash).ok_or(TrieDbError::Missing(hash))? {
            StoredNode::Leaf(p) => {
                if Hash128::leaf(p.key()) != hash {
                    return Err(TrieDbError::Corrupt(format!(
                        "leaf under {hash} hashes to {}",
                        Hash128::leaf(p.key())
                    )));
                }
                match self.key_len {
                    None => self.key_len = Some(p.key().len()),
                    Some(m) if m != p.key().len() => {
                        return Err(TrieDbError::Corrupt(format!(
                            "leaf key length {} != trie key length {m}",
                            p.key().len()
                        )))
                    }
                    Some(_) => {}
                }
                self.len += 1;
                let label = p.key().clone();
                Ok(self.alloc(Node {
                    label,
                    hash,
                    kind: Kind::Leaf(p),
                }))
            }
            StoredNode::Inner { left, right } => {
                if Hash128::combine(left, right) != hash {
                    return Err(TrieDbError::Corrupt(format!(
                        "inner under {hash} combines to {}",
                        Hash128::combine(left, right)
                    )));
                }
                let c0 = self.load_node(db, left)?;
                let c1 = self.load_node(db, right)?;
                let (l0, l1) = (&self.nodes[c0].label, &self.nodes[c1].label);
                let label = l0.common_prefix(l1);
                if l0.len() <= label.len()
                    || l1.len() <= label.len()
                    || l0.get(label.len())
                    || !l1.get(label.len())
                {
                    return Err(TrieDbError::Corrupt(format!(
                        "children {l0} / {l1} violate bit order under {hash}"
                    )));
                }
                Ok(self.alloc(Node {
                    label,
                    hash,
                    kind: Kind::Inner([c0, c1]),
                }))
            }
        }
    }

    /// Structural invariant check used by tests; returns a description of
    /// the first violation found.
    pub fn debug_validate(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err("len != 0 but no root".into())
            };
        };
        let mut leaves = 0usize;
        self.validate_node(root, None, &mut leaves)?;
        if leaves != self.len {
            return Err(format!("leaf count {leaves} != len {}", self.len));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        idx: usize,
        parent_label: Option<&BitStr>,
        leaves: &mut usize,
    ) -> Result<(), String> {
        let node = &self.nodes[idx];
        if let Some(pl) = parent_label {
            if !pl.is_prefix_of(&node.label) || pl.len() >= node.label.len() {
                return Err(format!(
                    "child label {} does not properly extend parent {}",
                    node.label, pl
                ));
            }
        }
        match &node.kind {
            Kind::Leaf(p) => {
                *leaves += 1;
                if p.key() != &node.label {
                    return Err("leaf label != publication key".into());
                }
                if node.hash != Hash128::leaf(&node.label) {
                    return Err(format!("stale leaf hash at {}", node.label));
                }
                if let Some(m) = self.key_len {
                    if node.label.len() != m {
                        return Err("leaf key length differs from trie key length".into());
                    }
                }
            }
            Kind::Inner([c0, c1]) => {
                let (l0, l1) = (&self.nodes[*c0].label, &self.nodes[*c1].label);
                if l0.get(node.label.len()) || !l1.get(node.label.len()) {
                    return Err(format!("child bit order wrong under {}", node.label));
                }
                let expect = l0.common_prefix(l1);
                if expect != node.label {
                    return Err(format!(
                        "inner label {} is not LCP of children ({} vs {})",
                        node.label, l0, l1
                    ));
                }
                if node.hash != Hash128::combine(self.nodes[*c0].hash, self.nodes[*c1].hash) {
                    return Err(format!("stale inner hash at {}", node.label));
                }
                self.validate_node(*c0, Some(&node.label), leaves)?;
                self.validate_node(*c1, Some(&node.label), leaves)?;
            }
        }
        Ok(())
    }
}

/// Borrowing DFS over a trie's leaves in key order (child 0 before
/// child 1 at every inner node) — see [`PatriciaTrie::iter_publications`].
pub struct PubIter<'a> {
    trie: &'a PatriciaTrie,
    stack: Vec<usize>,
}

impl<'a> Iterator for PubIter<'a> {
    type Item = &'a Publication;

    fn next(&mut self) -> Option<&'a Publication> {
        while let Some(idx) = self.stack.pop() {
            match &self.trie.nodes[idx].kind {
                Kind::Leaf(p) => return Some(p),
                Kind::Inner([c0, c1]) => {
                    // Push bit-1 first so bit-0 pops first: key order.
                    self.stack.push(*c1);
                    self.stack.push(*c0);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitStr {
        s.parse().unwrap()
    }

    fn raw(key: &str) -> Publication {
        Publication::with_raw_key(bs(key), 0, Vec::new())
    }

    /// The paper's Figure 2 tries: u holds {000,010,100,101},
    /// v holds {000,010,100}.
    fn figure2() -> (PatriciaTrie, PatriciaTrie) {
        let mut u = PatriciaTrie::new();
        for k in ["000", "010", "100", "101"] {
            assert!(u.insert(raw(k)));
        }
        let mut v = PatriciaTrie::new();
        for k in ["000", "010", "100"] {
            assert!(v.insert(raw(k)));
        }
        (u, v)
    }

    #[test]
    fn empty_trie() {
        let t = PatriciaTrie::new();
        assert!(t.is_empty());
        assert!(t.root_summary().is_none());
        assert!(t.node_summary(&bs("0")).is_none());
        assert!(t.min_cover(&bs("")).is_none());
        assert!(t.publications_with_prefix(&bs("1")).is_empty());
        t.debug_validate().unwrap();
    }

    #[test]
    fn single_leaf_is_root() {
        let mut t = PatriciaTrie::new();
        assert!(t.insert(raw("101")));
        let root = t.root_summary().unwrap();
        assert_eq!(root.label, bs("101"));
        assert_eq!(root.hash, Hash128::leaf(&bs("101")));
        t.debug_validate().unwrap();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = PatriciaTrie::new();
        assert!(t.insert(raw("101")));
        assert!(!t.insert(raw("101")));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn mixed_key_length_rejected() {
        let mut t = PatriciaTrie::new();
        assert!(t.insert(raw("101")));
        assert!(!t.insert(raw("10")));
        assert!(!t.insert(raw("1010")));
        assert_eq!(t.len(), 1);
        t.debug_validate().unwrap();
    }

    #[test]
    fn figure2_structure_u() {
        let (u, _) = figure2();
        assert_eq!(u.len(), 4);
        u.debug_validate().unwrap();
        // Root label is the empty word ⊥ with children "0" and "10".
        let root = u.root_summary().unwrap();
        assert_eq!(root.label, bs(""));
        let (c0, c1) = u.children(&bs("")).unwrap();
        assert_eq!(c0.label, bs("0"));
        assert_eq!(c1.label, bs("10"));
        // And the figure's hash structure.
        let h_p1 = Hash128::leaf(&bs("000"));
        let h_p2 = Hash128::leaf(&bs("010"));
        let h_p3 = Hash128::leaf(&bs("100"));
        let h_p4 = Hash128::leaf(&bs("101"));
        assert_eq!(c0.hash, Hash128::combine(h_p1, h_p2));
        assert_eq!(c1.hash, Hash128::combine(h_p3, h_p4));
        assert_eq!(root.hash, Hash128::combine(c0.hash, c1.hash));
    }

    #[test]
    fn figure2_structure_v() {
        let (_, v) = figure2();
        v.debug_validate().unwrap();
        let (c0, c1) = v.children(&bs("")).unwrap();
        assert_eq!(c0.label, bs("0"));
        assert_eq!(
            c1.label,
            bs("100"),
            "P3 hangs directly under the root in v.T"
        );
        assert_eq!(c1.hash, Hash128::leaf(&bs("100")));
    }

    #[test]
    fn insert_order_invariance() {
        use rand::seq::SliceRandom;
        let keys = [
            "0001", "0010", "0111", "1000", "1011", "1100", "1111", "0100",
        ];
        let mut reference = PatriciaTrie::new();
        for k in keys {
            reference.insert(raw(k));
        }
        let mut rng = rand::rng();
        for _ in 0..10 {
            let mut shuffled = keys.to_vec();
            shuffled.shuffle(&mut rng);
            let mut t = PatriciaTrie::new();
            for k in shuffled {
                t.insert(raw(k));
            }
            assert_eq!(t.root_hash(), reference.root_hash());
            t.debug_validate().unwrap();
        }
    }

    #[test]
    fn find_node_exact_only() {
        let (u, _) = figure2();
        assert!(u.node_summary(&bs("0")).is_some());
        assert!(u.node_summary(&bs("10")).is_some());
        assert!(u.node_summary(&bs("000")).is_some());
        assert!(u.node_summary(&bs("1")).is_none(), "no node labelled '1'");
        assert!(u.node_summary(&bs("00")).is_none());
        assert!(u.node_summary(&bs("0000")).is_none());
    }

    #[test]
    fn min_cover_cases() {
        let (_, v) = figure2();
        // Paper walk-through: label "10" has no node in v.T; the minimal
        // cover is the leaf "100".
        let c = v.min_cover(&bs("10")).unwrap();
        assert_eq!(c.label, bs("100"));
        // No node extends "11".
        assert!(v.min_cover(&bs("11")).is_none());
        // Cover of the empty prefix is the shorter root child.
        let c = v.min_cover(&bs("")).unwrap();
        assert_eq!(c.label, bs("0"));
    }

    #[test]
    fn check_outcomes_match_paper_walkthrough() {
        let (u, v) = figure2();
        // Step 1 of the §4.2 example: v receives u's root → hash mismatch
        // at an inner node → descend with children (0, …), (10, …).
        let ru = u.root_summary().unwrap();
        match v.check(&ru) {
            CheckOutcome::Descend(c0, c1) => {
                assert_eq!(c0.label, bs("0"));
                assert_eq!(c1.label, bs("100"));
            }
            other => panic!("expected Descend, got {other:?}"),
        }
        // u receives v's tuple (100, h(P3)) → exists with equal hash.
        let t100 = v.node_summary(&bs("100")).unwrap();
        assert_eq!(u.check(&t100), CheckOutcome::Match);
        // v receives u's tuple (10, …) → missing; cover is (100, h(P3)),
        // publish prefix 10 ∘ (1−0) = 101.
        let t10 = u.node_summary(&bs("10")).unwrap();
        match v.check(&t10) {
            CheckOutcome::Missing {
                cover: Some(c),
                publish_prefix,
            } => {
                assert_eq!(c.label, bs("100"));
                assert_eq!(publish_prefix, bs("101"));
            }
            other => panic!("expected Missing with cover, got {other:?}"),
        }
    }

    #[test]
    fn check_missing_without_cover() {
        let (u, v) = figure2();
        // Pretend u has a subtrie at "11…" that v lacks entirely and that
        // nothing in v extends "11": no cover → publish everything at "11".
        let fake = NodeSummary {
            label: bs("11"),
            hash: Hash128::leaf(&bs("11")),
        };
        match v.check(&fake) {
            CheckOutcome::Missing {
                cover: None,
                publish_prefix,
            } => {
                assert_eq!(publish_prefix, bs("11"));
            }
            other => panic!("expected Missing without cover, got {other:?}"),
        }
        drop(u);
    }

    #[test]
    fn prefix_enumeration() {
        let (u, _) = figure2();
        let keys: Vec<String> = u
            .publications_with_prefix(&bs("10"))
            .iter()
            .map(|p| p.key().to_string())
            .collect();
        assert_eq!(keys, ["100", "101"]);
        assert_eq!(u.publications_with_prefix(&bs("")).len(), 4);
        assert_eq!(u.publications_with_prefix(&bs("01")).len(), 1);
        assert!(u.publications_with_prefix(&bs("11")).is_empty());
        // Prefix longer than any key.
        assert!(u.publications_with_prefix(&bs("0000")).is_empty());
    }

    #[test]
    fn root_hash_equality_iff_same_keys() {
        let (mut u, mut v) = figure2();
        assert_ne!(u.root_hash(), v.root_hash());
        assert!(v.insert(raw("101")));
        assert_eq!(u.root_hash(), v.root_hash());
        assert!(u.insert(raw("111")));
        assert_ne!(u.root_hash(), v.root_hash());
        u.debug_validate().unwrap();
        v.debug_validate().unwrap();
    }

    #[test]
    fn derived_keys_work_end_to_end() {
        let mut t = PatriciaTrie::new();
        for i in 0..200u64 {
            assert!(t.insert(Publication::new(i % 7, format!("payload {i}").into_bytes())));
        }
        assert_eq!(t.len(), 200);
        t.debug_validate().unwrap();
        assert_eq!(t.publications().len(), 200);
    }

    #[test]
    fn borrowing_iterators_match_materialized_views() {
        let (u, _) = figure2();
        let iter_keys: Vec<String> = u.iter_keys().map(|k| k.to_string()).collect();
        assert_eq!(iter_keys, ["000", "010", "100", "101"]);
        let cloned: Vec<String> = u.keys().iter().map(|k| k.to_string()).collect();
        assert_eq!(iter_keys, cloned);
        let via_vec: Vec<&Publication> = u.publications();
        let via_iter: Vec<&Publication> = u.iter_publications().collect();
        assert_eq!(via_vec.len(), via_iter.len());
        for (a, b) in via_vec.iter().zip(&via_iter) {
            assert_eq!(a.key(), b.key());
        }
        assert_eq!(PatriciaTrie::new().iter_publications().count(), 0);
    }

    #[test]
    fn contains_key() {
        let (u, _) = figure2();
        assert!(u.contains_key(&bs("101")));
        assert!(
            !u.contains_key(&bs("10")),
            "inner node is not a publication"
        );
        assert!(!u.contains_key(&bs("111")));
    }
}
