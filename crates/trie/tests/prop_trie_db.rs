//! Property-based tests for the storage-backed trie layer:
//!
//! * `TrieBatch::apply` ≡ the `insert` loop (same root hash, length,
//!   structure) on arbitrary publication batches;
//! * commit → reopen round-trips exactly (root hash, keys, validation);
//! * twin tries opened from one committed snapshot (the ethrex
//!   `build_twin_tries` pattern, SNIPPETS.md #3): apply the same random
//!   op batch via `TrieBatch` on one and per-insert on the other, and
//!   the two must stay byte-identical.

use proptest::prelude::*;
use skippub_bits::BitStr;
use skippub_trie::{MemoryTrieDb, PatriciaTrie, Publication, TrieBatch, TrieDb, TrieDbError};

const KEY_BITS: usize = 12;

/// Short derived keys so random batches collide often enough to
/// exercise the duplicate-rejection path inside batches.
fn arb_pub() -> impl Strategy<Value = Publication> {
    (0u64..64, proptest::collection::vec(any::<u8>(), 0..6))
        .prop_map(|(author, payload)| Publication::with_key_bits(author, payload, KEY_BITS))
}

fn arb_pubs(max: usize) -> impl Strategy<Value = Vec<Publication>> {
    proptest::collection::vec(arb_pub(), 0..max)
}

fn keys_of(t: &PatriciaTrie) -> Vec<BitStr> {
    t.keys()
}

proptest! {
    #[test]
    fn batch_apply_equals_insert_loop(prefill in arb_pubs(60), batch in arb_pubs(120)) {
        let mut looped = PatriciaTrie::new();
        for p in &prefill {
            looped.insert(p.clone());
        }
        let mut batched = looped.clone();

        let mut added_loop = 0usize;
        for p in &batch {
            if looped.insert(p.clone()) {
                added_loop += 1;
            }
        }
        let b: TrieBatch = batch.iter().cloned().collect();
        let added_batch = b.apply(&mut batched);

        prop_assert_eq!(added_batch, added_loop, "insert counts must agree");
        prop_assert_eq!(batched.root_hash(), looped.root_hash());
        prop_assert_eq!(batched.len(), looped.len());
        prop_assert_eq!(keys_of(&batched), keys_of(&looped));
        batched.debug_validate().unwrap();
        looped.debug_validate().unwrap();
    }

    #[test]
    fn commit_reopen_round_trips(pubs in arb_pubs(100)) {
        let mut trie = PatriciaTrie::new();
        for p in &pubs {
            trie.insert(p.clone());
        }
        let mut db = MemoryTrieDb::new();
        let root = trie.commit_to(&mut db);
        prop_assert_eq!(root, trie.root_hash());

        let reopened = PatriciaTrie::open_from(&db, root).expect("store is complete");
        prop_assert_eq!(reopened.root_hash(), trie.root_hash());
        prop_assert_eq!(reopened.len(), trie.len());
        prop_assert_eq!(keys_of(&reopened), keys_of(&trie));
        reopened.debug_validate().unwrap();

        // Reopened payloads are intact, not just keys.
        for (a, b) in reopened.iter_publications().zip(trie.iter_publications()) {
            prop_assert_eq!(a.author(), b.author());
            prop_assert_eq!(a.payload(), b.payload());
        }
    }

    #[test]
    fn twin_tries_from_one_snapshot_stay_identical(
        base in arb_pubs(80),
        ops in arb_pubs(120),
    ) {
        // SNIPPETS.md #3: build once, commit, open two twins from the
        // same root hash, mutate both (batched vs per-insert), compare.
        let mut original = PatriciaTrie::new();
        for p in &base {
            original.insert(p.clone());
        }
        let mut db = MemoryTrieDb::new();
        let root = original.commit_to(&mut db);

        let mut twin_batched = PatriciaTrie::open_from(&db, root).unwrap();
        let mut twin_looped = PatriciaTrie::open_from(&db, root).unwrap();
        prop_assert_eq!(twin_batched.root_hash(), twin_looped.root_hash());

        let b: TrieBatch = ops.iter().cloned().collect();
        let added_batch = b.apply(&mut twin_batched);
        let mut added_loop = 0usize;
        for p in &ops {
            if twin_looped.insert(p.clone()) {
                added_loop += 1;
            }
        }

        prop_assert_eq!(added_batch, added_loop);
        prop_assert_eq!(twin_batched.root_hash(), twin_looped.root_hash());
        prop_assert_eq!(twin_batched.len(), twin_looped.len());
        prop_assert_eq!(keys_of(&twin_batched), keys_of(&twin_looped));
        twin_batched.debug_validate().unwrap();
        twin_looped.debug_validate().unwrap();
    }

    #[test]
    fn commits_deduplicate_shared_subtries(pubs in arb_pubs(80)) {
        // Two converged replicas commit into one store: the second
        // commit must write nothing new.
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        for p in &pubs {
            a.insert(p.clone());
            b.insert(p.clone());
        }
        let mut db = MemoryTrieDb::new();
        let root_a = a.commit_to(&mut db);
        let nodes_after_a = db.node_count();
        let root_b = b.commit_to(&mut db);
        prop_assert_eq!(root_a, root_b);
        prop_assert_eq!(db.node_count(), nodes_after_a, "converged replica re-writes nothing");
    }

    #[test]
    fn truncated_store_is_detected(pubs in arb_pubs(40)) {
        let mut trie = PatriciaTrie::new();
        for p in &pubs {
            trie.insert(p.clone());
        }
        if trie.len() >= 2 {
            let mut db = MemoryTrieDb::new();
            let root = trie.commit_to(&mut db);
            // Drop one non-root node from the store: reopening must
            // fail with Missing, never produce a silently smaller trie.
            let victim = db
                .iter()
                .map(|(h, _)| h)
                .find(|&h| Some(h) != root)
                .expect("a trie with ≥2 leaves has non-root nodes");
            let mut truncated = MemoryTrieDb::new();
            for (h, n) in db.iter() {
                if h != victim {
                    truncated.put(h, n.clone());
                }
            }
            match PatriciaTrie::open_from(&truncated, root) {
                Err(TrieDbError::Missing(h)) => prop_assert_eq!(h, victim),
                other => prop_assert!(false, "expected Missing, got {:?}", other.map(|t| t.len())),
            }
        }
    }
}

#[test]
fn empty_trie_round_trips() {
    let trie = PatriciaTrie::new();
    let mut db = MemoryTrieDb::new();
    assert_eq!(trie.commit_to(&mut db), None);
    assert_eq!(db.node_count(), 0);
    let reopened = PatriciaTrie::open_from(&db, None).unwrap();
    assert!(reopened.is_empty());
    reopened.debug_validate().unwrap();
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut trie = PatriciaTrie::new();
    trie.insert(Publication::new(1, b"x".to_vec()));
    let before = trie.root_hash();
    assert_eq!(TrieBatch::new().apply(&mut trie), 0);
    assert_eq!(trie.root_hash(), before);
}
