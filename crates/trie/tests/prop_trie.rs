//! Property-based tests: the Patricia trie against a reference set model,
//! and convergence of the two-party anti-entropy exchange on arbitrary
//! publication-set pairs (a pairwise version of Theorem 17).

use proptest::prelude::*;
use skippub_bits::BitStr;
use skippub_trie::{sync, PatriciaTrie, Publication};
use std::collections::BTreeSet;

const KEY_BITS: usize = 12;

/// A publication with a short derived key (12 bits) so that random pairs
/// collide often enough to exercise the duplicate path.
fn arb_pub() -> impl Strategy<Value = Publication> {
    (0u64..64, proptest::collection::vec(any::<u8>(), 0..6))
        .prop_map(|(author, payload)| Publication::with_key_bits(author, payload, KEY_BITS))
}

fn arb_pubs(max: usize) -> impl Strategy<Value = Vec<Publication>> {
    proptest::collection::vec(arb_pub(), 0..max)
}

proptest! {
    #[test]
    fn trie_matches_reference_set(pubs in arb_pubs(120)) {
        let mut trie = PatriciaTrie::new();
        let mut reference: BTreeSet<BitStr> = BTreeSet::new();
        for p in &pubs {
            let inserted = trie.insert(p.clone());
            let fresh = reference.insert(p.key().clone());
            prop_assert_eq!(inserted, fresh, "insert result must match set semantics");
        }
        trie.debug_validate().unwrap();
        prop_assert_eq!(trie.len(), reference.len());
        let keys: Vec<BitStr> = trie.keys();
        let expect: Vec<BitStr> = reference.iter().cloned().collect();
        prop_assert_eq!(keys, expect, "leaves must enumerate in key order");
    }

    #[test]
    fn root_hash_is_set_hash(pubs in arb_pubs(60), seed in any::<u64>()) {
        // Insertion order must not matter.
        let mut t1 = PatriciaTrie::new();
        for p in &pubs {
            t1.insert(p.clone());
        }
        let mut shuffled = pubs.clone();
        // Cheap deterministic shuffle.
        let n = shuffled.len();
        if n > 1 {
            let mut s = seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                shuffled.swap(i, (s % (i as u64 + 1)) as usize);
            }
        }
        let mut t2 = PatriciaTrie::new();
        for p in shuffled {
            t2.insert(p);
        }
        prop_assert_eq!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn prefix_query_matches_filter(pubs in arb_pubs(80), pfx_bits in proptest::collection::vec(any::<bool>(), 0..6)) {
        let mut trie = PatriciaTrie::new();
        let mut reference: BTreeSet<BitStr> = BTreeSet::new();
        for p in &pubs {
            trie.insert(p.clone());
            reference.insert(p.key().clone());
        }
        let prefix: BitStr = pfx_bits.into_iter().collect();
        let mut got: Vec<BitStr> = trie
            .publications_with_prefix(&prefix)
            .iter()
            .map(|p| p.key().clone())
            .collect();
        got.sort();
        let expect: Vec<BitStr> = reference
            .iter()
            .filter(|k| prefix.is_prefix_of(k))
            .cloned()
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn pairwise_sync_converges(a_pubs in arb_pubs(60), b_pubs in arb_pubs(60)) {
        // Theorem 17 at pair granularity: any two publication sets merge to
        // the union.
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        let mut union: BTreeSet<BitStr> = BTreeSet::new();
        for p in &a_pubs {
            a.insert(p.clone());
            union.insert(p.key().clone());
        }
        for p in &b_pubs {
            b.insert(p.clone());
            union.insert(p.key().clone());
        }
        let stats = sync::sync_pair(&mut a, &mut b, 256);
        prop_assert!(stats.converged, "sync must converge: {:?}", stats);
        let expect: Vec<BitStr> = union.into_iter().collect();
        prop_assert_eq!(a.keys(), expect.clone());
        prop_assert_eq!(b.keys(), expect);
        a.debug_validate().unwrap();
        b.debug_validate().unwrap();
    }

    #[test]
    fn sync_sends_no_more_pubs_than_missing(a_pubs in arb_pubs(50), b_pubs in arb_pubs(50)) {
        // §4.2: "only those publications are sent out that are assumed to
        // be missing at the receiver" — the total shipped is bounded by
        // the symmetric difference (each missing pub is shipped at least
        // once; re-shipments can only happen across initiations).
        let mut a = PatriciaTrie::new();
        let mut b = PatriciaTrie::new();
        for p in &a_pubs {
            a.insert(p.clone());
        }
        for p in &b_pubs {
            b.insert(p.clone());
        }
        let a_keys: BTreeSet<BitStr> = a.keys().into_iter().collect();
        let b_keys: BTreeSet<BitStr> = b.keys().into_iter().collect();
        let sym_diff = a_keys.symmetric_difference(&b_keys).count();
        let stats = sync::sync_pair(&mut a, &mut b, 256);
        prop_assert!(stats.converged);
        prop_assert!(
            stats.publications_sent <= sym_diff.max(1) * 2,
            "sent {} for symmetric difference {}", stats.publications_sent, sym_diff
        );
    }

    #[test]
    fn check_is_total(pubs in arb_pubs(40), label_bits in proptest::collection::vec(any::<bool>(), 0..14), hash_seed in any::<u64>()) {
        // check() must answer any (label, hash) tuple without panicking.
        let mut trie = PatriciaTrie::new();
        for p in &pubs {
            trie.insert(p.clone());
        }
        let label: BitStr = label_bits.into_iter().collect();
        let tuple = skippub_trie::NodeSummary {
            label,
            hash: skippub_bits::Hash128::of_bytes(&hash_seed.to_le_bytes()),
        };
        let _ = trie.check(&tuple);
    }
}
