//! Closed-form quantities from the paper's lemmas and theorems.
//!
//! These are the "paper says" columns of the experiment tables: Lemma 3's
//! label-population function `f(k)` and degree formulas, and Theorem 5's
//! expected configuration-request rate `Σ_k f(k)/(2^k·k²) < 1`.

/// Number of subscribers holding a label of length `k` in a *full* (power
/// of two) system of `n = 2^L` nodes (Lemma 3): `f(1) = 2`, `f(k) = 2^{k−1}`
/// for `k > 1`.
pub fn f_full(k: u8) -> u64 {
    match k {
        0 => 0,
        1 => 2,
        k => 1u64 << (k - 1),
    }
}

/// Number of subscribers with label length `k` among `l(0), …, l(n−1)`,
/// valid for arbitrary `n` (partial top level).
pub fn f_partial(k: u8, n: u64) -> u64 {
    if k == 0 || n == 0 {
        return 0;
    }
    // |l(x)| = k ⇔ x ∈ [2^{k−1}, 2^k) for k ≥ 2, and x ∈ {0,1} for k = 1.
    let lo = if k == 1 { 0 } else { 1u64 << (k - 1) };
    let hi = 1u64.checked_shl(k as u32).unwrap_or(u64::MAX);
    n.clamp(lo, hi) - lo
}

/// Base-ring level `⌈log₂ n⌉` — the maximum label length in a legitimate
/// state with `n` subscribers.
pub fn max_level(n: u64) -> u8 {
    if n <= 1 {
        0
    } else {
        (64 - (n - 1).leading_zeros()) as u8
    }
}

/// Lemma 3's worst-case degree bound `2·(log n − k + 1)` for a node with
/// label length `k` in a full system.
pub fn degree_bound(k: u8, log_n: u8) -> u64 {
    2 * (log_n.saturating_sub(k) as u64 + 1)
}

/// Lemma 3's directed edge count `|E_R ∪ E_S| = 4n − 4` (exact for `n` a
/// power of two).
pub fn directed_edges_full(n: u64) -> u64 {
    4 * n - 4
}

/// Subscriber probe probability from §3.2.1 action (ii) as implemented:
/// a subscriber with label length `k ≥ 2` asks for its configuration with
/// probability `1/(2^k · k²)` per timeout. For `k = 1` the probability is
/// halved (`1/4`): Theorem 5's proof accounts `2^{k−1}` subscribers per
/// label length, but length 1 actually has **two** labels ("0" and "1",
/// Lemma 3's `f(1) = 2`); taking the paper's formula verbatim would make
/// the k=1 term alone equal 1 and break the theorem's `< 1` bound. Halving
/// `p(1)` restores the proof's series `Σ 1/(2k²) = π²/12 ≈ 0.822`
/// (documented in DESIGN.md note 5).
pub fn probe_probability(k: u8) -> f64 {
    match k {
        0 => 0.0,
        1 => 0.25,
        k => 1.0 / (2f64.powi(k as i32) * (k as f64) * (k as f64)),
    }
}

/// Theorem 5's expected number of configuration requests arriving at the
/// supervisor per timeout interval: `Σ_{k=1}^{log n} f(k)·p(k) = Σ 1/(2k²)`
/// for full systems; computed with `f_partial` for arbitrary `n`.
/// Always `< 1` (it converges to `π²/12 ≈ 0.822` as `n → ∞`).
pub fn expected_probe_rate(n: u64) -> f64 {
    (1..=max_level(n).max(1))
        .map(|k| f_partial(k, n) as f64 * probe_probability(k))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_full_matches_lemma3() {
        assert_eq!(f_full(1), 2);
        assert_eq!(f_full(2), 2);
        assert_eq!(f_full(3), 4);
        assert_eq!(f_full(4), 8);
        // Σ f(k) for k=1..L equals 2^L.
        for log_n in 1..20u8 {
            let total: u64 = (1..=log_n).map(f_full).sum();
            assert_eq!(total, 1u64 << log_n);
        }
    }

    #[test]
    fn f_partial_sums_to_n() {
        for n in 1..500u64 {
            let total: u64 = (1..=64u8).map(|k| f_partial(k, n)).sum();
            assert_eq!(total, n, "n={n}");
        }
    }

    #[test]
    fn f_partial_equals_full_at_powers() {
        for log_n in 1..16u8 {
            let n = 1u64 << log_n;
            for k in 1..=log_n {
                assert_eq!(f_partial(k, n), f_full(k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn max_level_values() {
        assert_eq!(max_level(1), 0);
        assert_eq!(max_level(2), 1);
        assert_eq!(max_level(3), 2);
        assert_eq!(max_level(4), 2);
        assert_eq!(max_level(5), 3);
        assert_eq!(max_level(16), 4);
        assert_eq!(max_level(17), 5);
    }

    #[test]
    fn probe_rate_below_one_for_all_n() {
        for n in [2u64, 4, 16, 100, 1 << 10, 1 << 20, 1 << 40] {
            let rate = expected_probe_rate(n);
            assert!(rate < 1.0, "n={n}: rate {rate}");
            assert!(rate > 0.4, "n={n}: rate {rate} suspiciously low");
        }
    }

    #[test]
    fn probe_rate_theorem5_value() {
        // With p(1) halved (see probe_probability docs) a full level k
        // contributes exactly f(k)·p(k) = 1/(2k²), so the expected rate is
        // Theorem 5's series Σ_{k=1}^{log n} 1/(2k²) → π²/12 ≈ 0.8224.
        let rate = expected_probe_rate(1 << 30);
        let series: f64 = (1..=30u32)
            .map(|k| 1.0 / (2.0 * (k as f64) * (k as f64)))
            .sum();
        assert!(
            (rate - series).abs() < 1e-9,
            "rate {rate} vs series {series}"
        );
    }

    #[test]
    fn degree_bound_values() {
        assert_eq!(degree_bound(4, 4), 2);
        assert_eq!(degree_bound(1, 4), 8);
        assert_eq!(degree_bound(5, 4), 2);
        assert_eq!(directed_edges_full(16), 60);
    }
}
