//! Ground-truth `SR(n)` topology (Definition 2).
//!
//! [`IdealSkipRing`] materializes the skip ring over the labels
//! `l(0), …, l(n−1)`: the base ring `E_R` (consecutive in the order induced
//! by `r`) and, for every level `i ∈ {1, …, ⌈log n⌉ − 1}`, the sorted ring
//! over `K_i = {w : |label_w| ≤ i}` contributing the shortcut set `E_S`.
//!
//! This module is *specification*, not protocol: the protocol crates build
//! the same topology distributedly, and tests/checkers compare against
//! this oracle.

use crate::shortcut::{expected_shortcuts, ShortcutTarget};
use crate::Label;
use std::collections::{BTreeMap, VecDeque};

/// An undirected skip-ring edge annotated with its level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LeveledEdge {
    /// Endpoint with the smaller ring position.
    pub a: Label,
    /// Endpoint with the larger ring position.
    pub b: Label,
    /// `max(|a|, |b|)`; the base-ring level is `⌈log n⌉`.
    pub level: u8,
}

/// Degree statistics of a topology snapshot (Lemma 3 artefacts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub n: usize,
    /// Maximum simple-graph degree.
    pub max_degree: usize,
    /// Average simple-graph degree.
    pub avg_degree: f64,
    /// Total number of *directed* edges (paper counts `|E_R ∪ E_S|`
    /// directed; equals `4n − 4` for `n` a power of two).
    pub directed_edges: usize,
}

/// The ideal skip ring `SR(n)`: an oracle for every structural question.
#[derive(Clone, Debug)]
pub struct IdealSkipRing {
    /// Labels sorted by ring position `r`.
    sorted: Vec<Label>,
    /// Label → index in `sorted`.
    pos: BTreeMap<Label, usize>,
    n: usize,
}

impl IdealSkipRing {
    /// Builds `SR(n)` over labels `l(0..n)`. Panics for `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "SR(n) requires at least one node");
        let mut sorted: Vec<Label> = (0..n as u64).map(Label::from_index).collect();
        sorted.sort();
        let pos = sorted.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        IdealSkipRing { sorted, pos, n }
    }

    /// Number of subscribers.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The base-ring level `⌈log₂ n⌉` (0 for n = 1).
    pub fn max_level(&self) -> u8 {
        (usize::BITS - (self.n - 1).leading_zeros()) as u8
    }

    /// Labels in ring order (ascending `r`).
    pub fn labels(&self) -> &[Label] {
        &self.sorted
    }

    /// Ring predecessor and successor of `label` (Definition 2 `E_R`).
    /// Panics if `label` is not a member.
    pub fn ring_neighbors(&self, label: Label) -> (Label, Label) {
        let i = self.pos[&label];
        let left = self.sorted[(i + self.n - 1) % self.n];
        let right = self.sorted[(i + 1) % self.n];
        (left, right)
    }

    /// The `(pred, succ)` configuration the supervisor hands to the
    /// subscriber at insertion index `x` (labels only).
    pub fn config_of_index(&self, x: u64) -> (Label, Label) {
        self.ring_neighbors(Label::from_index(x))
    }

    /// The exact shortcut set of `label` per the local derivation rule —
    /// identical to the per-level-ring definition (validated in tests).
    pub fn shortcuts_of(&self, label: Label) -> Vec<ShortcutTarget> {
        let (left, right) = self.ring_neighbors(label);
        expected_shortcuts(label, left, right)
    }

    /// All undirected edges with levels: base ring at level `⌈log n⌉`,
    /// shortcut edges at `max(|u|,|v|)`. An edge participating in several
    /// level rings is reported once, at its *lowest* level (the level that
    /// first creates it), matching Figure 1's colouring.
    pub fn edges(&self) -> Vec<LeveledEdge> {
        let mut seen: BTreeMap<(Label, Label), u8> = BTreeMap::new();
        let max_level = self.max_level();
        // Level rings from the base ring upward... iterate i = 1..=max_level
        // where i == max_level is E_R itself.
        for i in 1..=max_level {
            let members: Vec<Label> = if i == max_level {
                self.sorted.clone()
            } else {
                self.sorted
                    .iter()
                    .copied()
                    .filter(|l| l.len() <= i)
                    .collect()
            };
            if members.len() < 2 {
                continue;
            }
            for j in 0..members.len() {
                let u = members[j];
                let v = members[(j + 1) % members.len()];
                if u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                let level = u.len().max(v.len()).min(i);
                seen.entry(key)
                    .and_modify(|l| *l = (*l).min(level))
                    .or_insert(level);
            }
        }
        seen.into_iter()
            .map(|((a, b), level)| LeveledEdge { a, b, level })
            .collect()
    }

    /// Adjacency lists of the simple (deduplicated, undirected) graph.
    pub fn adjacency(&self) -> BTreeMap<Label, Vec<Label>> {
        let mut adj: BTreeMap<Label, Vec<Label>> = BTreeMap::new();
        for e in self.edges() {
            adj.entry(e.a).or_default().push(e.b);
            adj.entry(e.b).or_default().push(e.a);
        }
        adj
    }

    /// Degree statistics. `directed_edges` counts each endpoint's stored
    /// reference as in the paper's Lemma 3 bookkeeping: ring `left`/`right`
    /// pointers plus per-side shortcut chain entries, i.e. the sum over all
    /// nodes of `2 + |derive_all|` (without deduplication).
    pub fn degree_stats(&self) -> DegreeStats {
        let adj = self.adjacency();
        let max_degree = adj.values().map(Vec::len).max().unwrap_or(0);
        let total: usize = adj.values().map(Vec::len).sum();
        let mut directed = 0usize;
        for &l in &self.sorted {
            let (left, right) = self.ring_neighbors(l);
            let chains = crate::shortcut::derive_all(l, left, right);
            directed += 2 + chains.len();
        }
        DegreeStats {
            n: self.n,
            max_degree,
            avg_degree: total as f64 / self.n as f64,
            directed_edges: directed,
        }
    }

    /// Graph diameter by BFS from every node (the skip ring has
    /// diameter `O(log n)`, §1.3/§4.3). Quadratic; fine for test scales.
    pub fn diameter(&self) -> usize {
        let adj = self.adjacency();
        if self.n <= 1 {
            return 0;
        }
        let mut diameter = 0;
        for &start in &self.sorted {
            diameter = diameter.max(self.eccentricity(&adj, start));
        }
        diameter
    }

    /// Longest shortest-path distance from `start`.
    pub fn eccentricity(&self, adj: &BTreeMap<Label, Vec<Label>>, start: Label) -> usize {
        let mut dist: BTreeMap<Label, usize> = BTreeMap::new();
        dist.insert(start, 0);
        let mut q = VecDeque::from([start]);
        let mut ecc = 0;
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &v in adj.get(&u).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    ecc = ecc.max(du + 1);
                    q.push_back(v);
                }
            }
        }
        ecc
    }

    /// BFS hop distances from `start` to all nodes — the flooding
    /// delivery-time oracle for experiment E9.
    pub fn bfs_hops(&self, start: Label) -> BTreeMap<Label, usize> {
        let adj = self.adjacency();
        let mut dist: BTreeMap<Label, usize> = BTreeMap::new();
        dist.insert(start, 0);
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &v in adj.get(&u).into_iter().flatten() {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(s: &str) -> Label {
        s.parse().unwrap()
    }

    #[test]
    fn sr16_matches_figure1() {
        let sr = IdealSkipRing::new(16);
        assert_eq!(sr.max_level(), 4);
        let edges = sr.edges();
        let count_at = |lvl: u8| edges.iter().filter(|e| e.level == lvl).count();
        // Figure 1: 16 black ring edges, 8 green (level 3), 4 red (level 2),
        // 1 blue drawn edge at level 1 (the 2-node level ring collapses to a
        // single undirected edge between "0" and "1").
        assert_eq!(count_at(4), 16);
        assert_eq!(count_at(3), 8);
        assert_eq!(count_at(2), 4);
        assert_eq!(count_at(1), 1);
        assert_eq!(edges.len(), 29);
    }

    #[test]
    fn sr16_ring_order_is_sorted_r() {
        let sr = IdealSkipRing::new(16);
        let fracs: Vec<u64> = sr.labels().iter().map(|l| l.frac()).collect();
        let mut sorted = fracs.clone();
        sorted.sort_unstable();
        assert_eq!(fracs, sorted);
        // Figure 1 example: neighbours of 1/4 are 3/16 and 5/16.
        let (l, r) = sr.ring_neighbors(lab("01"));
        assert_eq!(l.r_fraction(), "3/16");
        assert_eq!(r.r_fraction(), "5/16");
    }

    #[test]
    fn shortcuts_match_paper_example() {
        let sr = IdealSkipRing::new(16);
        let sc = sr.shortcuts_of(lab("01"));
        let fr: Vec<String> = sc.iter().map(|t| t.label.r_fraction()).collect();
        // §3.2.2: shortcuts of 1/4 are 0, 1/8 (left) and 3/8, 1/2 (right).
        assert!(fr.contains(&"1/8".to_string()));
        assert!(fr.contains(&"0".to_string()));
        assert!(fr.contains(&"3/8".to_string()));
        assert!(fr.contains(&"1/2".to_string()));
        assert_eq!(sc.len(), 4);
    }

    #[test]
    fn derivation_adjacency_equals_level_ring_definition() {
        // Spec-level equivalence for arbitrary n: the neighbourhood of v
        // (ring neighbours ∪ derived shortcuts) must equal the Definition-2
        // adjacency (base ring ∪ all level rings). Note the per-level lists
        // can legitimately differ for non-power-of-two n, where a level-ring
        // edge may coincide with a base-ring edge (the derivation correctly
        // omits it because the connection is already held as a ring edge).
        for n in [2usize, 3, 4, 5, 8, 12, 16, 33, 64, 100] {
            let sr = IdealSkipRing::new(n);
            let ideal_adj = sr.adjacency();
            for &v in sr.labels() {
                let (rl, rr) = sr.ring_neighbors(v);
                let mut ours: Vec<Label> = vec![rl, rr];
                ours.extend(sr.shortcuts_of(v).iter().map(|t| t.label));
                ours.retain(|&l| l != v); // n ≤ 2 self-neighbour case
                ours.sort();
                ours.dedup();
                let mut ideal: Vec<Label> = ideal_adj.get(&v).cloned().unwrap_or_default();
                ideal.sort();
                assert_eq!(ours, ideal, "n={n} v={v:?}");
            }
        }
    }

    #[test]
    fn derivation_per_level_exact_for_powers_of_two() {
        // For full systems every level ring is disjoint from the base ring,
        // so the derivation must reproduce the level rings level-by-level.
        for n in [4usize, 8, 16, 64, 128] {
            let sr = IdealSkipRing::new(n);
            let max_level = sr.max_level();
            for &v in sr.labels() {
                let derived = sr.shortcuts_of(v);
                let mut expect: Vec<ShortcutTarget> = Vec::new();
                for i in 1..max_level {
                    if v.len() > i {
                        continue;
                    }
                    let members: Vec<Label> = sr
                        .labels()
                        .iter()
                        .copied()
                        .filter(|l| l.len() <= i)
                        .collect();
                    let j = members.iter().position(|&m| m == v).unwrap();
                    let left = members[(j + members.len() - 1) % members.len()];
                    let right = members[(j + 1) % members.len()];
                    for t in [left, right] {
                        if t != v {
                            expect.push(ShortcutTarget { label: t, level: i });
                        }
                    }
                }
                expect.sort_by_key(|t| (t.level, t.label));
                expect.dedup();
                let mut derived_sorted = derived.clone();
                derived_sorted.sort_by_key(|t| (t.level, t.label));
                assert_eq!(derived_sorted, expect, "n={n} v={v:?}");
            }
        }
    }

    #[test]
    fn degree_lemma3_power_of_two() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let sr = IdealSkipRing::new(n);
            let stats = sr.degree_stats();
            assert_eq!(stats.directed_edges, 4 * n - 4, "n={n}: |E_R ∪ E_S| = 4n−4");
            assert!(
                stats.avg_degree <= 4.0 + 1e-9,
                "n={n} avg {}",
                stats.avg_degree
            );
            let log_n = n.trailing_zeros() as usize;
            for &v in sr.labels() {
                let bound = 2 * (log_n - v.len() as usize + 1);
                let deg = sr.adjacency()[&v].len();
                assert!(deg <= bound.max(2), "n={n} v={v:?} deg {deg} bound {bound}");
            }
        }
    }

    #[test]
    fn diameter_is_logarithmic() {
        for (n, max_diam) in [(8usize, 4usize), (16, 5), (64, 8), (128, 10)] {
            let sr = IdealSkipRing::new(n);
            let d = sr.diameter();
            assert!(d <= max_diam, "n={n}: diameter {d} > {max_diam}");
            assert!(d >= 1);
        }
    }

    #[test]
    fn single_node_ring() {
        let sr = IdealSkipRing::new(1);
        assert_eq!(sr.max_level(), 0);
        assert_eq!(sr.diameter(), 0);
        let (l, r) = sr.ring_neighbors(lab("0"));
        assert_eq!(l, lab("0"));
        assert_eq!(r, lab("0"));
        assert!(sr.edges().is_empty());
    }

    #[test]
    fn two_node_ring() {
        let sr = IdealSkipRing::new(2);
        let (l, r) = sr.ring_neighbors(lab("0"));
        assert_eq!(l, lab("1"));
        assert_eq!(r, lab("1"));
        assert_eq!(sr.edges().len(), 1);
        assert_eq!(sr.max_level(), 1);
    }

    #[test]
    fn bfs_hops_cover_all() {
        let sr = IdealSkipRing::new(32);
        let hops = sr.bfs_hops(lab("0"));
        assert_eq!(hops.len(), 32);
        assert!(hops.values().all(|&h| h <= sr.diameter()));
    }

    #[test]
    fn config_of_index_first_insertions() {
        // Subscribing in order 0,1,2,…: the supervisor's configs must
        // interleave new nodes between consecutive old nodes (§4.1).
        let sr = IdealSkipRing::new(4);
        let (p, s) = sr.config_of_index(2); // label "01" = 1/4
        assert_eq!(p, lab("0"));
        assert_eq!(s, lab("1"));
    }
}
