//! Local shortcut-label derivation (paper §3.2.2).
//!
//! A subscriber `v` computes the labels it must hold shortcuts to *purely*
//! from its own label and the labels of its two direct ring neighbours:
//! if the neighbour `w` has a longer label than `v`, then `w` was inserted
//! between `v` and some older node `s` with `r(s) = 2·r(w) − r(v) (mod 1)`,
//! and the rule recurses on `s` until the derived label is no longer than
//! `v`'s. Every intermediate label (including the final one) is a shortcut
//! target of `v`.
//!
//! All arithmetic is exact: `r` values are `u64` numerators over `2⁶⁴` and
//! the doubling rule is wrapping integer arithmetic (the ring is `[0,1)`
//! with 1 ≡ 0, represented by the subscriber with label `"0"`).

use crate::Label;

/// A derived shortcut target: the label `v` must connect to, and the level
/// `max(|v|, |s|)` the edge lives on (Definition 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShortcutTarget {
    /// Label of the shortcut partner.
    pub label: Label,
    /// Skip-ring level of the edge.
    pub level: u8,
}

/// Derives the chain of shortcut labels on one side of `v`, starting from
/// the direct ring neighbour `neighbor` on that side.
///
/// Returns the labels in derivation order (decreasing length). The
/// recursion provably terminates because each derived label is strictly
/// shorter than its predecessor; a belt-and-braces guard of 64 iterations
/// protects against adversarially corrupted (non-canonical) inputs.
///
/// ```
/// use skippub_ringmath::{shortcut::derive_side, Label};
/// // Paper example (§3.2.2): v = 1/4 with left neighbour 3/16 yields
/// // shortcuts 1/8 then 0.
/// let v: Label = "01".parse().unwrap();
/// let left: Label = "0011".parse().unwrap();
/// let chain = derive_side(v, left);
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain[0].label.r_fraction(), "1/8");
/// assert_eq!(chain[1].label.r_fraction(), "0");
/// ```
pub fn derive_side(v: Label, neighbor: Label) -> Vec<ShortcutTarget> {
    let mut out = Vec::new();
    derive_side_into(v, neighbor, &mut out);
    out
}

/// [`derive_side`] into a caller-provided buffer (appended, not
/// cleared) — the allocation-free form hot checkers use with a reusable
/// scratch vector.
pub fn derive_side_into(v: Label, neighbor: Label, out: &mut Vec<ShortcutTarget>) {
    let mut w = neighbor;
    let mut guard = 0u8;
    while w.len() > v.len() && guard < Label::MAX_LEN {
        // r(s) = 2·r(w) − r(v)  (mod 1)
        let s_frac = w.frac().wrapping_shl(1).wrapping_sub(v.frac());
        let s = Label::canonical(s_frac);
        out.push(ShortcutTarget {
            label: s,
            level: s.len().max(v.len()),
        });
        w = s;
        guard += 1;
    }
}

/// All shortcut targets of `v` given both direct ring neighbours, in
/// (side, derivation-order). The same label may appear on both sides (for
/// instance both level-1 shortcuts of `"0"` point at `"1"` on a 2-node
/// base ring); callers that need a set should dedupe.
pub fn derive_all(v: Label, left: Label, right: Label) -> Vec<ShortcutTarget> {
    let mut out = derive_side(v, left);
    out.extend(derive_side(v, right));
    out
}

/// The deduplicated set of `(level, label)` shortcut entries of `v`,
/// sorted by level then label — the exact content `v.shortcuts` must have
/// in a legitimate state. Used by the checker and by `SetData` handling.
pub fn expected_shortcuts(v: Label, left: Label, right: Label) -> Vec<ShortcutTarget> {
    let mut all = Vec::new();
    expected_shortcuts_into(v, left, right, &mut all);
    all
}

/// [`expected_shortcuts`] into a caller-provided buffer (cleared
/// first). With a reused buffer this derivation allocates nothing after
/// the buffer's one-time growth — the form the boolean checker's hot
/// path uses.
///
/// The deduplicated labels are **distinct**: a target's level is a
/// function of `(|v|, |label|)` alone, so the same label reached from
/// both sides always carries the same level and collapses in the dedup.
pub fn expected_shortcuts_into(v: Label, left: Label, right: Label, out: &mut Vec<ShortcutTarget>) {
    out.clear();
    derive_side_into(v, left, out);
    derive_side_into(v, right, out);
    out.sort_by_key(|t| (t.level, t.label));
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(s: &str) -> Label {
        s.parse().unwrap()
    }

    #[test]
    fn paper_worked_example_left() {
        // §3.2.2: label 1/4, left ring neighbour 3/16 in SR(16):
        //   s1 = 2·3/16 − 1/4 = 1/8; s2 = 2·1/8 − 1/4 = 0; stop (|0| = 1 < 2).
        let chain = derive_side(lab("01"), lab("0011"));
        let labels: Vec<String> = chain.iter().map(|t| t.label.r_fraction()).collect();
        assert_eq!(labels, ["1/8", "0"]);
        assert_eq!(chain[0].level, 3);
        assert_eq!(chain[1].level, 2);
    }

    #[test]
    fn paper_worked_example_right() {
        // Same node's right side: neighbour 5/16 → 3/8 then 1/2.
        let chain = derive_side(lab("01"), lab("0101"));
        let labels: Vec<String> = chain.iter().map(|t| t.label.r_fraction()).collect();
        assert_eq!(labels, ["3/8", "1/2"]);
    }

    #[test]
    fn wraps_around_one() {
        // v = "1" (1/2) with right-side chain passing through 3/4:
        // 2·3/4 − 1/2 = 1 ≡ 0 → label "0".
        let chain = derive_side(lab("1"), lab("101"));
        let labels: Vec<String> = chain.iter().map(|t| t.label.to_string()).collect();
        assert_eq!(labels, ["11", "0"]);
    }

    #[test]
    fn shorter_neighbor_derives_nothing() {
        assert!(derive_side(lab("001"), lab("01")).is_empty());
        assert!(derive_side(lab("01"), lab("01")).is_empty());
    }

    #[test]
    fn zero_label_full_ladder() {
        // "0" with right neighbour 1/16 in SR(16): ladder 1/8, 1/4, 1/2.
        let chain = derive_side(lab("0"), lab("0001"));
        let labels: Vec<String> = chain.iter().map(|t| t.label.r_fraction()).collect();
        assert_eq!(labels, ["1/8", "1/4", "1/2"]);
        let levels: Vec<u8> = chain.iter().map(|t| t.level).collect();
        assert_eq!(levels, [3, 2, 1]);
    }

    #[test]
    fn dedupes_shared_level1_target() {
        // SR(4): node "0" has left "11" and right "01"; both sides derive
        // the same level-1 target "1", which must be deduplicated.
        // left: 2·3/4 − 0 = 3/2 ≡ 1/2 = "1"; right: 2·1/4 − 0 = 1/2 = "1".
        let set = expected_shortcuts(lab("0"), lab("11"), lab("01"));
        let strs: Vec<String> = set.iter().map(|t| t.label.to_string()).collect();
        assert_eq!(strs, vec!["1".to_string()]);
        assert_eq!(set[0].level, 1);
    }

    #[test]
    fn corrupted_input_terminates() {
        // Non-canonical, adversarial labels must not loop forever.
        let v = Label::from_parts(0, 64).unwrap(); // "000…0"
        let w = Label::from_parts(u64::MAX, 64).unwrap();
        let chain = derive_side(v, w);
        assert!(chain.len() <= 64);
    }
}
