//! # skippub-ringmath
//!
//! The label algebra of the **supervised skip ring** (paper §2.1):
//!
//! * [`Label`] — a subscriber label `y ∈ {0,1}*` together with the paper's
//!   evaluation `r(y) = Σ yᵢ/2ⁱ ∈ [0,1)`, represented exactly as a dyadic
//!   fraction `frac/2⁶⁴` (no floating point anywhere).
//! * [`Label::from_index`] — the paper's label function
//!   `l(x) = x_{d-1} … x₀ x_d` that moves the leading bit of `x`'s binary
//!   representation to the units place, generating the sequence
//!   `0, 1, 01, 11, 001, 011, 101, 111, 0001, …`.
//! * [`shortcut`] — the §3.2.2 local shortcut-label derivation
//!   (`r(s) = 2·r(w) − r(v)` recursion) by which a subscriber computes all
//!   its shortcut labels purely from its two ring neighbours.
//! * [`IdealSkipRing`] — the ground-truth `SR(n)` topology of Definition 2
//!   (ring edges `E_R` plus per-level shortcut edges `E_S`), used by the
//!   legitimate-state checker, the tests, and experiments E1/E3/E9/E10.
//! * [`analytics`] — closed forms from Lemma 3 and Theorem 5 (degree
//!   bounds, `f(k)` label-population counts, expected probe rate) that the
//!   experiment tables print as their "paper" column.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
mod ideal;
mod label;
pub mod shortcut;

pub use ideal::{DegreeStats, IdealSkipRing, LeveledEdge};
pub use label::Label;
