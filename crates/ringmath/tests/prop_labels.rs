//! Property-based tests for the label algebra and shortcut derivation.

use proptest::prelude::*;
use skippub_ringmath::{analytics, shortcut, IdealSkipRing, Label};

proptest! {
    #[test]
    fn label_index_roundtrip(x in any::<u64>()) {
        let l = Label::from_index(x);
        prop_assert_eq!(l.index(), Some(x));
        prop_assert!(l.is_canonical());
    }

    #[test]
    fn label_length_is_floor_log(x in 1u64..) {
        let l = Label::from_index(x);
        prop_assert_eq!(l.len() as u32, 64 - x.leading_zeros());
    }

    #[test]
    fn labels_injective(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(Label::from_index(a), Label::from_index(b));
            // r is injective on canonical labels too.
            prop_assert_ne!(Label::from_index(a).frac(), Label::from_index(b).frac());
        }
    }

    #[test]
    fn generation_interleaving(x in 2u64..u64::MAX / 2) {
        // l(x) for x in generation d lands strictly between two
        // consecutive earlier labels: its fraction is an odd multiple of
        // 2^-(d+1) where all earlier labels are multiples of 2^-d.
        let l = Label::from_index(x);
        let len = l.len() as u32;
        let unit = 1u64 << (64 - len);
        prop_assert_eq!(l.frac() % unit, 0);
        prop_assert_eq!((l.frac() / unit) % 2, 1, "fraction must be odd multiple of 2^-len");
    }

    #[test]
    fn ring_distance_symmetric_bounded(a in any::<u64>(), b in any::<u64>()) {
        let (la, lb) = (Label::from_index(a), Label::from_index(b));
        prop_assert_eq!(la.ring_distance(&lb), lb.ring_distance(&la));
        prop_assert!(la.ring_distance(&lb) <= 1u64 << 63);
    }

    #[test]
    fn derivation_terminates_and_shrinks(vf in any::<u64>(), vl in 1u8..=64, wf in any::<u64>(), wl in 1u8..=64) {
        // Even for adversarial (non-canonical) labels the chain is finite
        // and strictly decreasing in length.
        let v = Label::from_parts(vf, vl).unwrap();
        let w = Label::from_parts(wf, wl).unwrap();
        let chain = shortcut::derive_side(v, w);
        prop_assert!(chain.len() <= 64);
        let mut prev = w.len();
        for t in &chain {
            prop_assert!(t.label.len() < prev, "chain must strictly shrink");
            prev = t.label.len();
        }
        if let Some(last) = chain.last() {
            prop_assert!(last.label.len() <= v.len());
        }
    }

    #[test]
    fn ideal_ring_adjacency_closed(n in 2usize..180) {
        let sr = IdealSkipRing::new(n);
        let adj = sr.adjacency();
        // Symmetric, no self-loops, all nodes present.
        prop_assert_eq!(adj.len(), n);
        for (u, vs) in &adj {
            for v in vs {
                prop_assert_ne!(u, v);
                prop_assert!(adj[v].contains(u), "adjacency must be symmetric");
            }
        }
    }

    #[test]
    fn ideal_degree_bounds(n in 2usize..180) {
        let sr = IdealSkipRing::new(n);
        let stats = sr.degree_stats();
        let log_n = analytics::max_level(n as u64) as usize;
        prop_assert!(stats.max_degree <= 2 * (log_n + 1),
            "n={n} max degree {} above Lemma-3 bound", stats.max_degree);
        prop_assert!(stats.avg_degree <= 4.5, "n={n} avg {}", stats.avg_degree);
    }

    #[test]
    fn ideal_diameter_logarithmic(n in 2usize..140) {
        let sr = IdealSkipRing::new(n);
        let log_n = analytics::max_level(n as u64) as usize;
        prop_assert!(sr.diameter() <= 2 * log_n + 2,
            "n={n} diameter {} not O(log n)", sr.diameter());
    }

    #[test]
    fn f_partial_consistent_with_ideal(n in 1usize..300) {
        let sr = IdealSkipRing::new(n);
        for k in 1..=8u8 {
            let count = sr.labels().iter().filter(|l| l.len() == k).count() as u64;
            prop_assert_eq!(count, analytics::f_partial(k, n as u64), "n={} k={}", n, k);
        }
    }
}
