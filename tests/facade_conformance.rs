//! Cross-backend conformance: the *same* subscribe/publish/crash/rejoin
//! scenario script, written once against `&mut dyn PubSub`, runs
//! unmodified on the sim, chaos, multi-topic, and sharded backends — and
//! the delivered-publication sets must be **identical** across them
//! (publication keys are derived from `(author, payload)`, and client IDs
//! are assigned identically on every backend). The threaded backend runs
//! the same script under a generous wall-clock deadline and must deliver
//! the same set modulo timing.

use skippub_core::{BackendKind, PubSub, SystemBuilder, TopicId};
// `DeliveredItem`/`DeliveredSet` are the scenario engine's canonical
// comparable "delivered publication" shape — shared here so the script
// test and the spec tests can never drift apart.
use skippub_harness::scenario::{
    self, library, DeliveredSet, FaultRule, FaultSpec, LinkClass, Sever, Trace,
};
use skippub_net::NetBackend;
use skippub_sim::NodeId;

const T: TopicId = TopicId(0);

/// The scenario script: bootstrap 6 subscribers, publish, crash one +
/// unsubscribe one, re-stabilize, a newcomer joins (crash/rejoin), one
/// post-churn publish, converge. Returns the delivered set, after
/// asserting every surviving member observed the identical set.
fn scenario(ps: &mut dyn PubSub, budget: u64) -> DeliveredSet {
    let name = ps.backend_name();
    let ids: Vec<NodeId> = (0..6).map(|_| ps.subscribe(T)).collect();
    assert_eq!(ids[0], NodeId(1), "{name}: client ids must start at 1");
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: bootstrap must stabilize");

    ps.publish(ids[0], T, b"paper draft v1".to_vec())
        .expect("alive author");
    ps.publish(ids[2], T, b"supervised pub-sub".to_vec())
        .expect("alive author");
    let (_, ok) = ps.until_pubs_converged(budget);
    assert!(ok, "{name}: first publications must converge");

    // Churn burst: one abrupt crash (reported after a detection delay),
    // one graceful leave.
    ps.crash(ids[3]);
    for _ in 0..3 {
        ps.step();
    }
    ps.report_crash(ids[3]);
    ps.unsubscribe(ids[4], T);
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: churn must re-stabilize");

    // Rejoin-style newcomer (crashed nodes rejoin under a fresh ID).
    let late = ps.subscribe(T);
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: late join must re-stabilize");

    ps.publish(ids[1], T, b"post-churn".to_vec())
        .expect("alive author");
    let (_, ok) = ps.until_pubs_converged(budget);
    assert!(ok, "{name}: history must reach the newcomer");

    // Every surviving member (including the newcomer) must have observed
    // the identical delivered set.
    let members = [ids[0], ids[1], ids[2], ids[5], late];
    let mut sets: Vec<DeliveredSet> = Vec::new();
    for &m in &members {
        let set: DeliveredSet = ps
            .drain_events(m)
            .into_iter()
            .map(|d| (d.author, d.payload, d.key.to_string()))
            .collect();
        sets.push(set);
    }
    for (i, s) in sets.iter().enumerate() {
        assert_eq!(
            s, &sets[0],
            "{name}: member {:?} diverges from member {:?}",
            members[i], members[0]
        );
    }
    assert_eq!(sets[0].len(), 3, "{name}: three publications were issued");
    sets.into_iter().next().expect("nonempty")
}

#[test]
fn simulated_backends_deliver_identical_sets() {
    let mut reference: Option<(&'static str, DeliveredSet)> = None;
    for kind in BackendKind::all() {
        let builder = SystemBuilder::new(0xFACADE).shards(4);
        let mut ps = builder.build(kind);
        let budget = match kind {
            BackendKind::Chaos => 40_000,
            _ => 8_000,
        };
        let set = scenario(ps.as_mut(), budget);
        match &reference {
            None => reference = Some((kind.name(), set)),
            Some((ref_name, ref_set)) => assert_eq!(
                &set,
                ref_set,
                "{} delivers a different set than {}",
                kind.name(),
                ref_name
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Declarative-scenario conformance: the same checks, but with the
// workload expressed as a `ScenarioSpec` and executed by the scenario
// engine instead of a hand-written script.
// ---------------------------------------------------------------------

/// A nontrivial built-in spec (warm start, publish load, a crash storm
/// with detector latency, until-legit stop) runs on every in-process
/// backend and must produce identical delivered sets.
#[test]
fn crash_storm_spec_delivers_identical_sets_across_backends() {
    let spec = library::crash_storm();
    let mut reference: Option<(String, scenario::ScenarioOutcome)> = None;
    for kind in spec.supported_backends() {
        let out = scenario::run_spec(&spec, kind).expect("supported backend");
        assert!(
            out.report.ok(),
            "{} failed on {}: {}",
            spec.name,
            kind.name(),
            out.report.to_json()
        );
        match &reference {
            None => reference = Some((out.report.backend.clone(), out)),
            Some((ref_name, ref_out)) => {
                assert_eq!(
                    out.delivered, ref_out.delivered,
                    "{} delivers a different set than {ref_name}",
                    kind.name()
                );
                assert_eq!(
                    out.report.delivered_fingerprint, ref_out.report.delivered_fingerprint
                );
            }
        }
    }
    let (_, ref_out) = reference.expect("at least one backend ran");
    assert_eq!(
        ref_out.report.total_pubs, ref_out.report.ops.publishes,
        "no publication may be lost to the crash storm"
    );
}

/// The threaded runtime executes the same spec (wall-clock steps,
/// quiescence polling) and must deliver the same set as the simulator.
#[test]
fn threaded_backend_runs_the_same_spec() {
    let spec = library::steady_state();
    let sim = scenario::run_spec(&spec, BackendKind::Sim).expect("sim");
    assert!(sim.report.ok(), "{}", sim.report.to_json());
    let threaded = scenario::run_threaded(&spec).expect("single-topic spec");
    assert!(threaded.report.ok(), "{}", threaded.report.to_json());
    assert_eq!(
        threaded.delivered, sim.delivered,
        "threaded delivered sets must match the simulator's"
    );
    assert_eq!(
        threaded.report.delivered_fingerprint,
        sim.report.delivered_fingerprint
    );
}

/// Record → serialize → parse → replay reproduces the JSON report byte
/// for byte (the repro contract for failures found under scenario
/// workloads).
#[test]
fn recorded_trace_replays_to_identical_json_report() {
    let spec = library::crash_storm();
    let (out, trace) = scenario::run_recorded(&spec, BackendKind::Sim).expect("sim");
    assert!(out.report.ok(), "{}", out.report.to_json());
    let replayed = Trace::parse(&trace.serialize())
        .expect("parse")
        .replay()
        .expect("replay");
    assert_eq!(
        replayed.to_json(),
        out.report.to_json(),
        "replay must reproduce the report byte for byte"
    );
}

// ---------------------------------------------------------------------
// Parallel-executor conformance: the sharded backend is partitioned and
// stepped by worker threads; the worker count must never change results.
// ---------------------------------------------------------------------

/// Canonical digest of a per-topic checker snapshot: the supervisor's
/// full database (label → node) plus every member's label and believed
/// ring neighbours. Byte-identical digests mean byte-identical final
/// topology state, not merely an equivalent one.
fn snapshot_digest(snap: &skippub_sim::World<skippub_core::Actor>) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (id, actor) in snap.iter() {
        if let Some(sup) = actor.supervisor() {
            let _ = write!(text, "S{}:n={};", id.0, sup.n());
            for (label, node) in &sup.database {
                let _ = write!(text, "{label:?}->{node:?};");
            }
        } else if let Some(sub) = actor.subscriber() {
            let _ = write!(
                text,
                "C{}:{:?},{:?},{:?};",
                id.0,
                sub.label,
                sub.left.as_ref().map(|r| r.id),
                sub.right.as_ref().map(|r| r.id)
            );
        }
    }
    format!(
        "{:032x}",
        skippub_bits::Hash128::of_bytes(text.as_bytes()).0
    )
}

/// A crash storm riding on continuous churn, 12 topics over 8 shards —
/// the workload from the issue's determinism checklist.
fn parallel_determinism_spec() -> scenario::ScenarioSpec {
    use skippub_harness::scenario::{Burst, BurstKind, ScenarioSpec, Stop};
    ScenarioSpec::new("parallel-determinism", 0x9A7A11E1)
        .topics(12)
        .shards(8)
        .population(24)
        .publishers(6)
        .publish_prob(0.25)
        .arrivals_per_round(0.5)
        .departures_per_round(0.4)
        .rounds(16)
        .burst(Burst {
            at: 5,
            count: 4,
            kind: BurstKind::Crash {
                detect_after: Some(3),
            },
        })
        .stop(Stop::UntilLegit { max_extra: 8_000 })
        .settle(3_000)
}

/// The crash-storm + churn spec runs on the sharded backend under 1, 2,
/// 4, and 8 worker threads: delivered sets, the full report fingerprint,
/// per-partition stats, and every topic's final checker-snapshot digest
/// must be **byte-identical** across thread counts — and the delivered
/// sets must equal the serial (multi-topic, single-world) backend's.
#[test]
fn sharded_runs_are_byte_identical_across_thread_counts() {
    let base = parallel_determinism_spec();
    // Serial reference: the unpartitioned multi-topic backend.
    let serial = scenario::run_spec(&base, BackendKind::MultiTopic).expect("supported");
    assert!(serial.report.ok(), "{}", serial.report.to_json());

    let mut reference: Option<(scenario::ScenarioOutcome, Vec<String>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let spec = base.clone().threads(threads);
        let mut ps = scenario::builder_for(&spec).build_sharded();
        let out = scenario::run_on(&mut ps, &spec, 1);
        assert!(
            out.report.ok(),
            "threads={threads}: {}",
            out.report.to_json()
        );
        let digests: Vec<String> = (0..spec.topics)
            .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
            .collect();
        // Identical to the serial backend: same delivered publications.
        assert_eq!(
            out.delivered, serial.delivered,
            "threads={threads}: sharded delivered sets diverge from the serial backend"
        );
        match &reference {
            None => reference = Some((out, digests)),
            Some((ref_out, ref_digests)) => {
                assert_eq!(
                    out.report.delivered_fingerprint, ref_out.report.delivered_fingerprint,
                    "threads={threads}: delivered fingerprint diverges"
                );
                assert_eq!(
                    out.delivered, ref_out.delivered,
                    "threads={threads}: delivered sets diverge"
                );
                assert_eq!(
                    out.report.stats, ref_out.report.stats,
                    "threads={threads}: traffic stats (incl. per-partition) diverge"
                );
                assert_eq!(
                    &digests, ref_digests,
                    "threads={threads}: final checker snapshots diverge"
                );
            }
        }
    }
    let (ref_out, _) = reference.expect("at least one thread count ran");
    assert_eq!(
        ref_out.report.stats.per_partition.len(),
        8,
        "the report must expose one stats entry per shard partition"
    );
    // The imbalance gauges are derived from the same per-partition
    // counters, so they must be finite and at least 1.0 (max/mean) on
    // any run that delivered traffic.
    let delivered = ref_out.report.stats.delivered_imbalance();
    let stepped = ref_out.report.stats.stepped_imbalance();
    assert!(
        delivered.is_finite() && delivered >= 1.0,
        "delivered_imbalance gauge must be a finite max/mean ratio, got {delivered}"
    );
    assert!(
        stepped.is_finite() && stepped >= 1.0,
        "stepped_imbalance gauge must be a finite max/mean ratio, got {stepped}"
    );
}

/// Clients subscribed to topics on *different* shards force real
/// cross-partition envelope traffic; the delivered sets and stats must
/// still be byte-identical for every worker count, and the per-partition
/// stats must show the envelopes flowing.
#[test]
fn multi_shard_clients_exercise_cross_partition_envelopes() {
    let run = |threads: usize| {
        let mut ps = SystemBuilder::new(0xC405)
            .topics(8)
            .shards(4)
            .threads(threads)
            .build_sharded();
        let t0 = TopicId(0);
        let other = (1..8)
            .map(TopicId)
            .find(|t| ps.supervisor_for(*t) != ps.supervisor_for(t0))
            .expect("consistent hashing spreads 8 topics over >1 shard");
        let ids: Vec<NodeId> = (0..6).map(|_| ps.subscribe(t0)).collect();
        // Half the clients straddle a second topic on a foreign shard:
        // their BuildSR instance for it runs against a supervisor in
        // another partition, entirely over envelopes.
        for &id in &ids[..3] {
            ps.join(id, other);
        }
        assert!(ps.until_legit(10_000).1, "threads={threads}: stabilize");
        ps.publish(ids[0], other, b"cross-shard story".to_vec())
            .expect("straddling author");
        assert!(ps.until_pubs_converged(6_000).1, "threads={threads}: converge");
        let delivered: Vec<Vec<skippub_core::Delivery>> =
            ids.iter().map(|&id| ps.drain_events(id)).collect();
        for (i, events) in delivered.iter().enumerate() {
            let expect = if i < 3 { 1 } else { 0 };
            assert_eq!(
                events.len(),
                expect,
                "threads={threads}: only straddling members see the story"
            );
        }
        let stats = ps.stats();
        let crossed: u64 = stats.per_partition.iter().map(|p| p.cross_envelopes).sum();
        assert!(
            crossed > 0,
            "threads={threads}: foreign-shard membership must flow through envelopes"
        );
        (delivered, stats)
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), reference, "threads={threads} diverged");
    }
}

// ---------------------------------------------------------------------
// Delivery-budget conformance: a bounded per-round message budget may
// change *trajectories* (how many rounds stabilization takes) but never
// *outcomes* — with joins serialized, every backend must end in the same
// final checker snapshot and deliver the same publication set whether
// the budget is unbounded, generous, or a single message per round.
// ---------------------------------------------------------------------

#[test]
fn budgeted_runs_reach_identical_final_snapshots() {
    for kind in BackendKind::all() {
        let run = |budget: Option<u32>| {
            let mut ps = SystemBuilder::new(0xB0D6E7)
                .shards(4)
                .delivery_budget(budget)
                .build(kind);
            let steps = match kind {
                BackendKind::Chaos => 120_000,
                _ => 30_000,
            };
            // Serialized joins: stabilize after each subscribe so the
            // supervisor assigns labels in the same order regardless of
            // how the budget paces deliveries.
            let mut ids = Vec::new();
            for _ in 0..5 {
                ids.push(ps.subscribe(T));
                let (_, ok) = ps.until_legit(steps);
                assert!(ok, "{} budget={budget:?}: join must stabilize", kind.name());
            }
            ps.publish(ids[0], T, b"budget invariant".to_vec())
                .expect("alive author");
            ps.publish(ids[3], T, b"second story".to_vec())
                .expect("alive author");
            let (_, ok) = ps.until_pubs_converged(steps);
            assert!(ok, "{} budget={budget:?}: must converge", kind.name());
            let digest = snapshot_digest(&ps.snapshot(T));
            let sets: Vec<DeliveredSet> = ids
                .iter()
                .map(|&m| {
                    ps.drain_events(m)
                        .into_iter()
                        .map(|d| (d.author, d.payload, d.key.to_string()))
                        .collect()
                })
                .collect();
            (digest, sets, ps.stats().peak_in_flight)
        };
        let unbounded = run(None);
        assert!(
            unbounded.2 > 0,
            "{}: the peak-in-flight gauge must move",
            kind.name()
        );
        for b in [1u32, 4] {
            let budgeted = run(Some(b));
            assert_eq!(
                budgeted.0,
                unbounded.0,
                "{} budget={b}: final snapshot digest diverges from unbounded",
                kind.name()
            );
            assert_eq!(
                budgeted.1,
                unbounded.1,
                "{} budget={b}: delivered sets diverge from unbounded",
                kind.name()
            );
        }
    }
}

/// The peak-in-flight gauge is part of `Stats`, so the byte-identical
/// thread-count assertions above already pin it; this spells the
/// invariant out for the world-level aggregate as well.
#[test]
fn peak_in_flight_is_thread_count_invariant() {
    let run = |threads: usize| {
        let mut ps = SystemBuilder::new(0x9EA4)
            .topics(6)
            .shards(3)
            .threads(threads)
            .build_sharded();
        let ids: Vec<NodeId> = (0..9)
            .map(|i| ps.subscribe(TopicId(i % 6)))
            .collect();
        assert!(ps.until_legit(10_000).1, "threads={threads}");
        ps.publish(ids[0], TopicId(0), b"peak probe".to_vec())
            .expect("alive author");
        assert!(ps.until_pubs_converged(6_000).1, "threads={threads}");
        let stats = ps.stats();
        let per_part: u64 = stats.per_partition.iter().map(|p| p.peak_in_flight).sum();
        assert_eq!(
            stats.peak_in_flight, per_part,
            "threads={threads}: world peak must be the sum of partition peaks"
        );
        stats
    };
    let reference = run(1);
    assert!(reference.peak_in_flight > 0);
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), reference, "threads={threads} diverged");
    }
}

#[test]
fn threaded_backend_delivers_the_same_set() {
    // Reference run on the deterministic simulator.
    let reference = scenario(&mut SystemBuilder::new(0xFACADE).build_sim(), 8_000);
    // Same script over OS threads; steps are 10 ms slices, so this
    // budget is a generous wall-clock deadline, not a round count.
    let mut net = NetBackend::from_builder(&SystemBuilder::new(0xFACADE));
    let set = scenario(&mut net, 6_000);
    net.shutdown();
    assert_eq!(
        set, reference,
        "threaded delivery set must match the simulator's"
    );
}

// ---------------------------------------------------------------------
// Checkpoint/restore conformance: a backend snapshotted mid-script and
// restored (through serialized text) must continue **byte-identically**
// to the uninterrupted run — same delivered sets, same checker verdicts
// and digests, and a byte-identical final snapshot (which pins RNG
// stream positions, in-flight channels, cursors, and the payload pool).
// ---------------------------------------------------------------------

/// Phase 1 of the checkpoint script: bootstrap, publish (with a repeated
/// payload, so the interner pool is non-trivial), drain one member (so
/// the delivery cursor is non-trivial), then a crash mid-detection —
/// the snapshot lands *mid-stabilization* with messages in flight.
fn checkpoint_phase1(ps: &mut dyn PubSub) -> Vec<NodeId> {
    let k = ps.topic_count();
    let ids: Vec<NodeId> = (0..5).map(|i| ps.subscribe(TopicId(i % k))).collect();
    for _ in 0..30 {
        ps.step();
    }
    ps.publish(ids[0], TopicId(0), b"checkpoint alpha".to_vec())
        .expect("alive author");
    ps.publish(ids[1], TopicId(1 % k), b"checkpoint alpha".to_vec())
        .expect("alive author");
    ps.publish(ids[2], TopicId(2 % k), b"checkpoint beta".to_vec())
        .expect("alive author");
    for _ in 0..20 {
        ps.step();
    }
    let _ = ps.drain_events(ids[0]);
    ps.crash(ids[3]);
    for _ in 0..2 {
        ps.step();
    }
    ps.report_crash(ids[3]);
    // Two more steps leave repair traffic in flight at the boundary.
    for _ in 0..2 {
        ps.step();
    }
    ids
}

/// Everything observable from a phase-2 run: per-member delivered sets,
/// verdict sequence, per-topic checker digests, and the final snapshot
/// text (so byte-exactness is part of the comparison).
type Phase2Observations = (Vec<DeliveredSet>, Vec<(bool, bool)>, Vec<String>, String);

/// Phase 2: a newcomer joins, more publishes (repeating a phase-1
/// payload — a restored payload pool must still collapse it), verdict
/// polls interleaved with steps, then every live member drains.
/// Returns everything observable: per-member delivered sets, verdict
/// sequence, and final per-topic checker digests.
fn checkpoint_phase2(ps: &mut dyn PubSub, ids: &[NodeId]) -> Phase2Observations {
    let k = ps.topic_count();
    let late = ps.subscribe(TopicId(0));
    ps.publish(ids[1], TopicId(1 % k), b"checkpoint alpha".to_vec())
        .expect("alive author");
    ps.publish(ids[4], TopicId(4 % k), b"post-restore".to_vec())
        .expect("alive author");
    let mut verdicts = Vec::new();
    for _ in 0..6 {
        for _ in 0..10 {
            ps.step();
        }
        verdicts.push((ps.is_legitimate(), ps.publications_converged().0));
    }
    let mut sets = Vec::new();
    for &m in ids.iter().chain([&late]) {
        let set: DeliveredSet = ps
            .drain_events(m)
            .into_iter()
            .map(|d| (d.author, d.payload, d.key.to_string()))
            .collect();
        sets.push(set);
    }
    let digests = (0..k)
        .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
        .collect();
    let final_snap = ps
        .save_snapshot()
        .expect("snapshot-capable backend")
        .as_text()
        .to_string();
    (sets, verdicts, digests, final_snap)
}

/// Runs the interrupted (snapshot → serialize → restore → continue) run
/// against the uninterrupted reference and asserts every observable —
/// including the byte-exact final snapshot — matches.
fn assert_snapshot_round_trip(make: &dyn Fn() -> Box<dyn PubSub>) {
    let mut reference = make();
    let name = reference.backend_name();
    let ids = checkpoint_phase1(reference.as_mut());
    let want = checkpoint_phase2(reference.as_mut(), &ids);

    let mut original = make();
    let ids2 = checkpoint_phase1(original.as_mut());
    assert_eq!(ids, ids2, "{name}: phase 1 must be deterministic");
    let saved = original.save_snapshot().expect("snapshot-capable backend");
    drop(original); // the restored backend stands fully on its own
    let reparsed = skippub_core::pubsub::BackendSnapshot::from_text(saved.as_text())
        .expect("serialized snapshot must reparse");
    assert_eq!(reparsed.kind, name);
    let mut restored = skippub_core::pubsub::restore(&reparsed).expect("restore");
    assert_eq!(restored.backend_name(), name);
    let got = checkpoint_phase2(restored.as_mut(), &ids);

    assert_eq!(got.0, want.0, "{name}: delivered sets diverged");
    assert_eq!(got.1, want.1, "{name}: checker verdicts diverged");
    assert_eq!(got.2, want.2, "{name}: checker digests diverged");
    assert_eq!(
        got.3, want.3,
        "{name}: final snapshots diverged — restore is not exact"
    );
}

#[test]
fn snapshot_round_trip_is_exact_on_every_simulated_backend() {
    for kind in BackendKind::all() {
        let make = move || -> Box<dyn PubSub> {
            SystemBuilder::new(0x5A7_C0DE)
                .topics(match kind {
                    BackendKind::Sim | BackendKind::Chaos => 1,
                    _ => 3,
                })
                .shards(2)
                .build(kind)
        };
        assert_snapshot_round_trip(&make);
    }
}

#[test]
fn snapshot_round_trip_is_exact_on_sharded_at_every_thread_count() {
    for threads in [1usize, 2, 4, 8] {
        let make = move || -> Box<dyn PubSub> {
            Box::new(
                SystemBuilder::new(0x5A7_C0DE)
                    .topics(6)
                    .shards(4)
                    .threads(threads)
                    .build_sharded(),
            )
        };
        assert_snapshot_round_trip(&make);
    }
}

// ---------------------------------------------------------------------
// Replicated-supervisor failover conformance: a run whose schedule kills
// supervisor primaries must be observationally identical to the same
// schedule never crashing them — the failover oracle — on every backend
// and at every worker-thread count; and a snapshot taken mid-failover
// (replica groups already failed over, repair traffic in flight) must
// round-trip byte-exactly through the text codec.
// ---------------------------------------------------------------------

/// The failover oracle holds on sim, multi-topic, and sharded for a
/// single-topic supervisor-crash workload, and the crash runs deliver
/// identical sets across those backends (the usual conformance
/// contract, now with failovers in the schedule).
#[test]
fn supervisor_failover_matches_never_crashing_run_across_backends() {
    let spec = library::supervisor_crash_churn();
    let mut reference: Option<(String, String)> = None;
    for kind in [BackendKind::Sim, BackendKind::MultiTopic, BackendKind::Sharded] {
        let r = scenario::run_supervisor_crash(&spec, kind).expect("supported backend");
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.failovers, r.crashes, "{}: every kill must fail over", r.backend);
        match &reference {
            None => reference = Some((r.backend.clone(), r.fingerprint.clone())),
            Some((ref_name, ref_fp)) => assert_eq!(
                &r.fingerprint, ref_fp,
                "{} crash run delivers a different set than {ref_name}",
                r.backend
            ),
        }
    }
}

/// The oracle holds on the sharded backend's parallel executor at 1, 2,
/// 4, and 8 worker threads — with three different shards failing over —
/// and the crash runs are byte-identical across thread counts.
#[test]
fn supervisor_failover_oracle_holds_at_every_thread_count() {
    let base = library::supervisor_crash_shards();
    let mut reference: Option<(String, Vec<String>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let spec = base.clone().threads(threads);
        let r = scenario::run_supervisor_crash(&spec, BackendKind::Sharded)
            .expect("supported backend");
        assert!(r.ok(), "threads={threads}: {}", r.to_json());
        match &reference {
            None => reference = Some((r.fingerprint.clone(), r.digests.clone())),
            Some((ref_fp, ref_digests)) => {
                assert_eq!(
                    &r.fingerprint, ref_fp,
                    "threads={threads}: crash-run delivered sets diverge"
                );
                assert_eq!(
                    &r.digests, ref_digests,
                    "threads={threads}: crash-run final checker digests diverge"
                );
            }
        }
    }
}

/// A snapshot captured *mid-failover* — the replica group has already
/// elected a backup, repair traffic is in flight — must round-trip
/// byte-exactly: restoring it and re-saving yields the original text,
/// replica-log section included, and the restored backend still reports
/// the failover.
#[test]
fn mid_failover_snapshot_round_trips_byte_exactly() {
    for kind in BackendKind::all() {
        let topics = match kind {
            BackendKind::Sim | BackendKind::Chaos => 1,
            _ => 3,
        };
        let mut ps = SystemBuilder::new(0x5AFE_FA11)
            .topics(topics)
            .shards(2)
            .replicas(3)
            .build(kind);
        let ids: Vec<NodeId> = (0..5)
            .map(|i| ps.subscribe(TopicId(i % topics)))
            .collect();
        for _ in 0..30 {
            ps.step();
        }
        ps.publish(ids[0], T, b"pre-failover".to_vec())
            .expect("alive author");
        for _ in 0..10 {
            ps.step();
        }
        assert!(
            ps.crash_supervisor(T),
            "{}: a 3-replica group must fail over",
            kind.name()
        );
        // Two more steps leave stabilization traffic in flight at the
        // snapshot boundary.
        for _ in 0..2 {
            ps.step();
        }
        assert_eq!(ps.supervisor_failovers(), 1, "{}", kind.name());

        let saved = ps.save_snapshot().expect("snapshot-capable backend");
        let reparsed = skippub_core::pubsub::BackendSnapshot::from_text(saved.as_text())
            .expect("serialized snapshot must reparse");
        let restored = skippub_core::pubsub::restore(&reparsed).expect("restore");
        let resaved = restored.save_snapshot().expect("re-save");
        assert_eq!(
            resaved.as_text(),
            saved.as_text(),
            "{}: mid-failover snapshot must re-save byte-exactly",
            kind.name()
        );
        assert_eq!(
            restored.supervisor_failovers(),
            1,
            "{}: the failover count must survive the round trip",
            kind.name()
        );
        assert_eq!(
            restored.supervisor_replicas(),
            3,
            "{}: the replica group must survive the round trip",
            kind.name()
        );
    }
}

/// The restored payload pool keeps deduplicating: a payload published
/// before the snapshot is pooled, so re-publishing it after restore
/// hits the pool instead of growing it.
#[test]
fn restored_interner_still_pools_known_payloads() {
    let mut ps = SystemBuilder::new(0x1A7E).build_sim();
    let a = ps.subscribe(T);
    let b = ps.subscribe(T);
    assert!(ps.until_legit(2_000).1);
    ps.publish(a, T, b"evergreen payload".to_vec()).unwrap();
    ps.publish(b, T, b"evergreen payload".to_vec()).unwrap();
    let (unique, hits) = {
        let pool = ps.sim().payload_interner();
        (pool.unique(), pool.hits())
    };
    assert_eq!((unique, hits), (1, 1));

    let saved = ps.save_snapshot().expect("sim snapshots");
    let mut restored =
        skippub_core::pubsub::SimBackend::from_snapshot(&saved).expect("restore");
    let pool = restored.sim().payload_interner();
    assert_eq!((pool.unique(), pool.hits()), (unique, hits));
    restored
        .publish(a, T, b"evergreen payload".to_vec())
        .unwrap();
    let pool = restored.sim().payload_interner();
    assert_eq!(
        (pool.unique(), pool.hits()),
        (1, 2),
        "a restored pool must satisfy a re-publish from the pool"
    );
}

// ---------------------------------------------------------------------
// Link-fault conformance: an armed fault plane (loss, duplication,
// delay, reordering, scheduled partitions) is part of the deterministic
// state machine — faulted runs are byte-identical across worker-thread
// counts, the per-partition fault counters sum to the world totals, and
// a snapshot taken *mid-fault-window* (per-link streams advanced,
// delayed envelopes parked, a sever active) restores byte-exactly.
// ---------------------------------------------------------------------

/// The parallel-determinism workload with a full-spectrum fault
/// schedule riding on it: loss+duplication early, delay+reordering in a
/// second (disjoint — the first matching rule wins) window, and a
/// three-node partition that heals mid-run. All windows close by round
/// 12 of 16, so until-legit can settle on clean links.
fn faulted_parallel_spec() -> scenario::ScenarioSpec {
    let faults = FaultSpec {
        seed: 0xFA21,
        rules: vec![
            FaultRule {
                drop: 0.15,
                dup: 0.1,
                ..FaultRule::pass(0, 6, LinkClass::All)
            },
            FaultRule {
                delay: 0.25,
                delay_rounds: 2,
                reorder: 0.2,
                reorder_max: 3,
                ..FaultRule::pass(6, 12, LinkClass::All)
            },
        ],
        severs: vec![Sever {
            from_round: 3,
            to_round: 8,
            group: vec![10, 11, 12],
        }],
    };
    parallel_determinism_spec().faults(faults)
}

/// The faulted crash-storm + churn spec is byte-identical across 1, 2,
/// 4, and 8 sharded worker threads — delivered sets, fingerprints,
/// stats (fault counters included), and checker digests — and still
/// delivers the same set as the serial multi-topic backend: the fault
/// plane degrades trajectories, never outcomes or determinism.
#[test]
fn faulted_sharded_runs_are_byte_identical_across_thread_counts() {
    let base = faulted_parallel_spec();
    let serial = scenario::run_spec(&base, BackendKind::MultiTopic).expect("supported");
    assert!(serial.report.ok(), "{}", serial.report.to_json());

    let mut reference: Option<(scenario::ScenarioOutcome, Vec<String>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let spec = base.clone().threads(threads);
        let mut ps = scenario::builder_for(&spec).build_sharded();
        let out = scenario::run_on(&mut ps, &spec, 1);
        assert!(
            out.report.ok(),
            "threads={threads}: {}",
            out.report.to_json()
        );
        let digests: Vec<String> = (0..spec.topics)
            .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
            .collect();
        assert_eq!(
            out.delivered, serial.delivered,
            "threads={threads}: faulted sharded delivered sets diverge from the serial backend"
        );
        match &reference {
            None => reference = Some((out, digests)),
            Some((ref_out, ref_digests)) => {
                assert_eq!(
                    out.report.delivered_fingerprint, ref_out.report.delivered_fingerprint,
                    "threads={threads}: faulted delivered fingerprint diverges"
                );
                assert_eq!(
                    out.report.stats, ref_out.report.stats,
                    "threads={threads}: stats (incl. fault counters) diverge"
                );
                assert_eq!(
                    &digests, ref_digests,
                    "threads={threads}: faulted final checker snapshots diverge"
                );
            }
        }
    }

    // The schedule must have actually exercised every fault model, and
    // the per-partition accounting must tie out to the world totals.
    let (ref_out, _) = reference.expect("at least one thread count ran");
    let s = &ref_out.report.stats;
    assert!(s.dropped_by_fault > 0, "the loss model never fired");
    assert!(s.duplicated > 0, "the duplication model never fired");
    assert!(s.delayed > 0, "the delay model never fired");
    assert!(s.reordered > 0, "the reorder model never fired");
    let sums = s.per_partition.iter().fold((0u64, 0u64, 0u64, 0u64), |a, p| {
        (
            a.0 + p.dropped_by_fault,
            a.1 + p.duplicated,
            a.2 + p.reordered,
            a.3 + p.delayed,
        )
    });
    assert_eq!(
        sums,
        (s.dropped_by_fault, s.duplicated, s.reordered, s.delayed),
        "per-partition fault counters must sum to the world totals"
    );
}

/// Fault schedule for the mid-window snapshot test: high delay (parks
/// envelopes at the boundary), light loss, duplication and reordering,
/// plus a sever that is still open when the snapshot is taken. Windows
/// are relative to the arming round.
fn mid_window_faults() -> FaultSpec {
    FaultSpec {
        seed: 0xFA117,
        rules: vec![FaultRule {
            drop: 0.05,
            dup: 0.15,
            delay: 0.5,
            delay_rounds: 3,
            reorder: 0.2,
            reorder_max: 4,
            ..FaultRule::pass(0, 40, LinkClass::All)
        }],
        severs: vec![Sever {
            from_round: 0,
            to_round: 40,
            group: vec![4, 5],
        }],
    }
}

/// Phase 1: bootstrap, arm the plane mid-run, publish into the faulty
/// window, then step deep enough that delayed envelopes are parked and
/// the per-link streams have advanced — the snapshot boundary lands
/// mid-fault-window with the sever still active.
fn fault_window_phase1(ps: &mut dyn PubSub) -> Vec<NodeId> {
    let k = ps.topic_count();
    let ids: Vec<NodeId> = (0..5).map(|i| ps.subscribe(TopicId(i % k))).collect();
    for _ in 0..30 {
        ps.step();
    }
    ps.set_faults(Some(mid_window_faults()));
    ps.publish(ids[0], TopicId(0), b"faulted alpha".to_vec())
        .expect("alive author");
    ps.publish(ids[1], TopicId(1 % k), b"faulted beta".to_vec())
        .expect("alive author");
    for _ in 0..12 {
        ps.step();
    }
    ids
}

/// Phase 2: run past the window's close (heal), drain every member, and
/// capture the fault counters plus the final snapshot text.
fn fault_window_phase2(
    ps: &mut dyn PubSub,
    ids: &[NodeId],
) -> (Vec<DeliveredSet>, scenario::FaultCounts, String) {
    for _ in 0..60 {
        ps.step();
    }
    let mut sets = Vec::new();
    for &m in ids {
        let set: DeliveredSet = ps
            .drain_events(m)
            .into_iter()
            .map(|d| (d.author, d.payload, d.key.to_string()))
            .collect();
        sets.push(set);
    }
    let counts = ps.fault_counts();
    let final_snap = ps
        .save_snapshot()
        .expect("snapshot-capable backend")
        .as_text()
        .to_string();
    (sets, counts, final_snap)
}

/// A snapshot captured mid-fault-window must continue byte-identically
/// to the uninterrupted run on every simulated backend: same delivered
/// sets, same fault counters (the restored streams resume, not restart),
/// and a byte-exact final snapshot.
#[test]
fn mid_fault_window_snapshot_restores_byte_exactly() {
    for kind in BackendKind::all() {
        let topics = match kind {
            BackendKind::Sim | BackendKind::Chaos => 1,
            _ => 3,
        };
        let make = move || -> Box<dyn PubSub> {
            SystemBuilder::new(0xFA57_C0DE)
                .topics(topics)
                .shards(2)
                .build(kind)
        };
        let name = kind.name();

        let mut reference = make();
        let ids = fault_window_phase1(reference.as_mut());
        let want = fault_window_phase2(reference.as_mut(), &ids);
        assert!(
            want.1.delayed > 0,
            "{name}: the delay model must have parked envelopes"
        );
        assert!(want.1.dropped_by_fault > 0, "{name}: the loss model never fired");

        let mut original = make();
        let ids2 = fault_window_phase1(original.as_mut());
        assert_eq!(ids, ids2, "{name}: phase 1 must be deterministic");
        let saved = original.save_snapshot().expect("snapshot-capable backend");
        drop(original);
        let reparsed = skippub_core::pubsub::BackendSnapshot::from_text(saved.as_text())
            .expect("a mid-fault-window snapshot must reparse");
        let mut restored = skippub_core::pubsub::restore(&reparsed).expect("restore");
        let got = fault_window_phase2(restored.as_mut(), &ids);

        assert_eq!(got.0, want.0, "{name}: delivered sets diverged under faults");
        assert_eq!(
            got.1, want.1,
            "{name}: fault counters diverged — restored streams must resume, not restart"
        );
        assert_eq!(
            got.2, want.2,
            "{name}: final snapshots diverged — mid-window restore is not exact"
        );
    }
}

/// The threaded backend opts out of snapshots with an error, not a
/// panic — and the facade's restore rejects unknown kind tags.
#[test]
fn snapshot_unsupported_and_unknown_kinds_fail_cleanly() {
    let net = NetBackend::from_builder(&SystemBuilder::new(7));
    let err = net.save_snapshot().expect_err("net backend cannot snapshot");
    net.shutdown();
    assert!(err.contains("does not support snapshots"), "{err}");

    let alien = skippub_core::pubsub::BackendSnapshot::from_text("skippubsnap 1 alien 0")
        .expect("well-formed header");
    let err = match skippub_core::pubsub::restore(&alien) {
        Ok(_) => panic!("restoring an unknown kind must fail"),
        Err(e) => e,
    };
    assert!(err.contains("unknown snapshot kind"), "{err}");
}
