//! Cross-backend conformance: the *same* subscribe/publish/crash/rejoin
//! scenario script, written once against `&mut dyn PubSub`, runs
//! unmodified on the sim, chaos, multi-topic, and sharded backends — and
//! the delivered-publication sets must be **identical** across them
//! (publication keys are derived from `(author, payload)`, and client IDs
//! are assigned identically on every backend). The threaded backend runs
//! the same script under a generous wall-clock deadline and must deliver
//! the same set modulo timing.

use skippub_core::{BackendKind, PubSub, SystemBuilder, TopicId};
use skippub_net::NetBackend;
use skippub_sim::NodeId;
use std::collections::BTreeSet;

const T: TopicId = TopicId(0);

/// One delivered publication, in backend-agnostic form.
type Delivered = (u64, Vec<u8>, String);

/// The scenario script: bootstrap 6 subscribers, publish, crash one +
/// unsubscribe one, re-stabilize, a newcomer joins (crash/rejoin), one
/// post-churn publish, converge. Returns the delivered set, after
/// asserting every surviving member observed the identical set.
fn scenario(ps: &mut dyn PubSub, budget: u64) -> BTreeSet<Delivered> {
    let name = ps.backend_name();
    let ids: Vec<NodeId> = (0..6).map(|_| ps.subscribe(T)).collect();
    assert_eq!(ids[0], NodeId(1), "{name}: client ids must start at 1");
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: bootstrap must stabilize");

    ps.publish(ids[0], T, b"paper draft v1".to_vec())
        .expect("alive author");
    ps.publish(ids[2], T, b"supervised pub-sub".to_vec())
        .expect("alive author");
    let (_, ok) = ps.until_pubs_converged(budget);
    assert!(ok, "{name}: first publications must converge");

    // Churn burst: one abrupt crash (reported after a detection delay),
    // one graceful leave.
    ps.crash(ids[3]);
    for _ in 0..3 {
        ps.step();
    }
    ps.report_crash(ids[3]);
    ps.unsubscribe(ids[4], T);
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: churn must re-stabilize");

    // Rejoin-style newcomer (crashed nodes rejoin under a fresh ID).
    let late = ps.subscribe(T);
    let (_, ok) = ps.until_legit(budget);
    assert!(ok, "{name}: late join must re-stabilize");

    ps.publish(ids[1], T, b"post-churn".to_vec())
        .expect("alive author");
    let (_, ok) = ps.until_pubs_converged(budget);
    assert!(ok, "{name}: history must reach the newcomer");

    // Every surviving member (including the newcomer) must have observed
    // the identical delivered set.
    let members = [ids[0], ids[1], ids[2], ids[5], late];
    let mut sets: Vec<BTreeSet<Delivered>> = Vec::new();
    for &m in &members {
        let set: BTreeSet<Delivered> = ps
            .drain_events(m)
            .into_iter()
            .map(|d| (d.author, d.payload, d.key.to_string()))
            .collect();
        sets.push(set);
    }
    for (i, s) in sets.iter().enumerate() {
        assert_eq!(
            s, &sets[0],
            "{name}: member {:?} diverges from member {:?}",
            members[i], members[0]
        );
    }
    assert_eq!(sets[0].len(), 3, "{name}: three publications were issued");
    sets.into_iter().next().expect("nonempty")
}

#[test]
fn simulated_backends_deliver_identical_sets() {
    let mut reference: Option<(&'static str, BTreeSet<Delivered>)> = None;
    for kind in BackendKind::all() {
        let builder = SystemBuilder::new(0xFACADE).shards(4);
        let mut ps = builder.build(kind);
        let budget = match kind {
            BackendKind::Chaos => 40_000,
            _ => 8_000,
        };
        let set = scenario(ps.as_mut(), budget);
        match &reference {
            None => reference = Some((kind.name(), set)),
            Some((ref_name, ref_set)) => assert_eq!(
                &set,
                ref_set,
                "{} delivers a different set than {}",
                kind.name(),
                ref_name
            ),
        }
    }
}

#[test]
fn threaded_backend_delivers_the_same_set() {
    // Reference run on the deterministic simulator.
    let reference = scenario(&mut SystemBuilder::new(0xFACADE).build_sim(), 8_000);
    // Same script over OS threads; steps are 10 ms slices, so this
    // budget is a generous wall-clock deadline, not a round count.
    let mut net = NetBackend::from_builder(&SystemBuilder::new(0xFACADE));
    let set = scenario(&mut net, 6_000);
    net.shutdown();
    assert_eq!(
        set, reference,
        "threaded delivery set must match the simulator's"
    );
}
