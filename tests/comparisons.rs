//! Integration: structural comparisons between the skip ring and the
//! baseline overlays (the measured versions of the paper's §1.2/§1.3
//! prose).

use skippub_baselines::{metrics, Chord, RingCast, SkipGraph};
use skippub_ringmath::{analytics, IdealSkipRing};
use std::collections::BTreeMap;

fn skipring_adj(n: usize) -> Vec<Vec<usize>> {
    let sr = IdealSkipRing::new(n);
    let labels = sr.labels().to_vec();
    let index: BTreeMap<_, _> = labels.iter().enumerate().map(|(i, l)| (*l, i)).collect();
    let mut adj = vec![Vec::new(); n];
    for (l, ns) in sr.adjacency() {
        adj[index[&l]] = ns.iter().map(|m| index[m]).collect();
    }
    adj
}

#[test]
fn skip_ring_diameter_beats_plain_ring() {
    for n in [16usize, 64, 256] {
        let sr_diam = metrics::diameter(&skipring_adj(n));
        let ring_diam = metrics::diameter(&RingCast::new(n).adjacency());
        assert!(
            sr_diam < ring_diam,
            "n={n}: skip ring {sr_diam} !< ring {ring_diam}"
        );
        let log_n = analytics::max_level(n as u64) as usize;
        assert!(
            sr_diam <= 2 * log_n,
            "n={n}: diameter {sr_diam} not O(log n)"
        );
    }
}

#[test]
fn skip_ring_arcs_perfectly_balanced_chord_arcs_not() {
    let n = 256;
    let sr = IdealSkipRing::new(n);
    let fracs: Vec<u64> = sr.labels().iter().map(|l| l.frac()).collect();
    let arcs: Vec<u64> = (0..n)
        .map(|i| fracs[(i + 1) % n].wrapping_sub(fracs[i]))
        .collect();
    let max = *arcs.iter().max().unwrap() as f64;
    let min = *arcs.iter().min().unwrap() as f64;
    assert!(
        max / min <= 2.0 + 1e-9,
        "supervised arcs within 2×: {}",
        max / min
    );

    let chord = Chord::new(n, 9);
    let carcs = chord.arc_lengths();
    let cmax = *carcs.iter().max().unwrap() as f64;
    let cmin = *carcs.iter().filter(|&&a| a > 0).min().unwrap() as f64;
    assert!(
        cmax / cmin > 4.0,
        "random placement should be uneven: {}",
        cmax / cmin
    );
}

#[test]
fn degrees_skipring_vs_chord() {
    for n in [64usize, 256] {
        let sr_spread = metrics::degree_spread(&skipring_adj(n));
        let c_spread = metrics::degree_spread(&Chord::new(n, 2).adjacency_undirected());
        assert!(sr_spread.max <= c_spread.max, "n={n}");
        assert!(
            sr_spread.avg <= 4.5,
            "n={n} skip-ring avg {}",
            sr_spread.avg
        );
    }
}

#[test]
fn all_overlays_are_connected_with_log_diameter() {
    let n = 128;
    for (name, adj) in [
        ("skipring", skipring_adj(n)),
        ("chord", Chord::new(n, 3).adjacency_undirected()),
        ("skipgraph", SkipGraph::new(n, 3).adjacency()),
    ] {
        let d = metrics::diameter(&adj);
        assert!(d <= 26, "{name} diameter {d} too large for n={n}");
    }
}

#[test]
fn broker_fanout_vs_supervisor_zero_publish_load() {
    // The broker carries Θ(subscribers) messages per publication; the
    // skippub supervisor carries none (publications never touch it).
    let mut broker = skippub_baselines::Broker::new();
    for _ in 0..500 {
        broker.subscribe(1);
    }
    broker.publish(1);
    assert!(broker.msgs_per_publication() >= 500.0);

    use skippub_core::{scenarios, ProtocolConfig, SkipRingSim};
    let cfg = ProtocolConfig::default();
    let mut sim = SkipRingSim::from_world(scenarios::legit_world(32, 4, cfg), cfg);
    let sup = sim.supervisor_id();
    let before = sim.metrics().sent_by(sup);
    let src = sim.subscriber_ids()[0];
    sim.publish(src, b"load test".to_vec());
    let (_, ok) = sim.run_until_pubs_converged(50);
    assert!(ok);
    let sup_msgs = sim.metrics().sent_by(sup) - before;
    // Only background round-robin/probe traffic — bounded by rounds, not
    // by subscriber count.
    assert!(
        sup_msgs <= 10,
        "supervisor sent {sup_msgs} msgs for a publish"
    );
}
