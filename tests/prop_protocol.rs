//! Property-based integration tests: convergence and closure over random
//! adversarial instances and random operation sequences.

use proptest::prelude::*;
use skippub_core::scenarios::{adversarial_world, legit_world, Adversary};
use skippub_core::{ProtocolConfig, SkipRingSim};

fn arb_adversary() -> impl Strategy<Value = Adversary> {
    prop_oneof![
        Just(Adversary::RandomState),
        (2usize..5).prop_map(Adversary::Partitioned),
        Just(Adversary::CorruptDatabase),
        Just(Adversary::ShuffledLabels),
        Just(Adversary::CorruptChannels),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_adversarial_instances_converge(
        n in 2usize..14,
        seed in any::<u64>(),
        adv in arb_adversary(),
    ) {
        let cfg = ProtocolConfig::topology_only();
        let world = adversarial_world(n, seed, cfg, adv);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let (rounds, ok) = sim.run_until_legit(30_000);
        prop_assert!(ok, "{:?} n={} seed={} stuck after {} rounds", adv, n, seed, rounds);
        // Closure: a state snapshot can look legitimate while corrupted
        // messages are still in flight (Definition 1 legitimacy includes
        // channels), so require legitimacy to *persist* for 20 consecutive
        // rounds — residual corrupted traffic is finite and drains.
        let mut streak = 0;
        let mut budget = 30_000u32;
        while streak < 20 && budget > 0 {
            sim.run_round();
            budget -= 1;
            streak = if sim.is_legitimate() { streak + 1 } else { 0 };
        }
        prop_assert!(streak >= 20, "{:?} n={} seed={} never settled", adv, n, seed);
    }

    #[test]
    fn random_operation_sequences_keep_invariants(
        seed in any::<u64>(),
        ops in proptest::collection::vec(0u8..4, 1..18),
    ) {
        let cfg = ProtocolConfig::topology_only();
        let mut sim = SkipRingSim::from_world(legit_world(6, seed, cfg), cfg);
        for op in ops {
            match op {
                0 => {
                    sim.add_subscriber();
                }
                1 => {
                    if let Some(&id) = sim.subscriber_ids().first() {
                        sim.unsubscribe(id);
                    }
                }
                2 => {
                    if sim.subscriber_ids().len() > 1 {
                        let id = *sim.subscriber_ids().last().expect("non-empty");
                        sim.crash(id);
                        sim.run_round();
                        sim.report_crash(id);
                    }
                }
                _ => {
                    for _ in 0..3 {
                        sim.run_round();
                    }
                }
            }
        }
        // Whatever happened, the system must re-stabilize...
        let (rounds, ok) = sim.run_until_legit(30_000);
        prop_assert!(ok, "seed={} stuck after {} rounds: {:?}", seed, rounds,
            sim.report().issues.iter().take(3).collect::<Vec<_>>());
        // ...and the database must exactly mirror the survivors.
        let wanting: usize = sim
            .subscriber_ids()
            .iter()
            .filter(|id| sim.subscriber(**id).expect("live").wants_membership)
            .count();
        prop_assert_eq!(sim.supervisor().n(), wanting);
    }

    #[test]
    fn publications_converge_from_random_distributions(
        seed in any::<u64>(),
        assignment in proptest::collection::vec(0usize..5, 0..24),
    ) {
        let cfg = ProtocolConfig { flooding: false, ..ProtocolConfig::default() };
        let mut sim = SkipRingSim::from_world(legit_world(5, seed, cfg), cfg);
        let ids = sim.subscriber_ids();
        for (i, &host) in assignment.iter().enumerate() {
            let p = skippub_trie::Publication::new(i as u64, format!("{i}").into_bytes());
            sim.seed_publication(ids[host], p);
        }
        let (_, ok) = sim.run_until_pubs_converged(30_000);
        prop_assert!(ok);
        let (converged, total) = sim.publications_converged();
        prop_assert!(converged);
        // Distinct (author, payload) pairs in the assignment.
        let distinct = assignment.len();
        prop_assert_eq!(total, distinct);
    }
}
