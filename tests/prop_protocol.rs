//! Property-based integration tests: convergence and closure over random
//! adversarial instances and random operation sequences.

use proptest::prelude::*;
use skippub_core::scenarios::{adversarial_world, legit_world, Adversary};
use skippub_core::{ProtocolConfig, PubSub, SkipRingSim, SystemBuilder, TopicId};
use skippub_sim::{FaultRule, FaultSpec, LinkClass, NodeId, Sever};

fn arb_adversary() -> impl Strategy<Value = Adversary> {
    prop_oneof![
        Just(Adversary::RandomState),
        (2usize..5).prop_map(Adversary::Partitioned),
        Just(Adversary::CorruptDatabase),
        Just(Adversary::ShuffledLabels),
        Just(Adversary::CorruptChannels),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_adversarial_instances_converge(
        n in 2usize..14,
        seed in any::<u64>(),
        adv in arb_adversary(),
    ) {
        let cfg = ProtocolConfig::topology_only();
        let world = adversarial_world(n, seed, cfg, adv);
        let mut sim = SkipRingSim::from_world(world, cfg);
        let (rounds, ok) = sim.run_until_legit(30_000);
        prop_assert!(ok, "{:?} n={} seed={} stuck after {} rounds", adv, n, seed, rounds);
        // Closure: a state snapshot can look legitimate while corrupted
        // messages are still in flight (Definition 1 legitimacy includes
        // channels), so require legitimacy to *persist* for 20 consecutive
        // rounds — residual corrupted traffic is finite and drains.
        let mut streak = 0;
        let mut budget = 30_000u32;
        while streak < 20 && budget > 0 {
            sim.run_round();
            budget -= 1;
            streak = if sim.is_legitimate() { streak + 1 } else { 0 };
        }
        prop_assert!(streak >= 20, "{:?} n={} seed={} never settled", adv, n, seed);
    }

    #[test]
    fn random_operation_sequences_keep_invariants(
        seed in any::<u64>(),
        ops in proptest::collection::vec(0u8..4, 1..18),
    ) {
        let cfg = ProtocolConfig::topology_only();
        let mut sim = SkipRingSim::from_world(legit_world(6, seed, cfg), cfg);
        for op in ops {
            match op {
                0 => {
                    sim.add_subscriber();
                }
                1 => {
                    if let Some(&id) = sim.subscriber_ids().first() {
                        sim.unsubscribe(id);
                    }
                }
                2 => {
                    if sim.subscriber_ids().len() > 1 {
                        let id = *sim.subscriber_ids().last().expect("non-empty");
                        sim.crash(id);
                        sim.run_round();
                        sim.report_crash(id);
                    }
                }
                _ => {
                    for _ in 0..3 {
                        sim.run_round();
                    }
                }
            }
        }
        // Whatever happened, the system must re-stabilize...
        let (rounds, ok) = sim.run_until_legit(30_000);
        prop_assert!(ok, "seed={} stuck after {} rounds: {:?}", seed, rounds,
            sim.report().issues.iter().take(3).collect::<Vec<_>>());
        // ...and the database must exactly mirror the survivors.
        let wanting: usize = sim
            .subscriber_ids()
            .iter()
            .filter(|id| sim.subscriber(**id).expect("live").wants_membership)
            .count();
        prop_assert_eq!(sim.supervisor().n(), wanting);
    }

    #[test]
    fn publications_converge_from_random_distributions(
        seed in any::<u64>(),
        assignment in proptest::collection::vec(0usize..5, 0..24),
    ) {
        let cfg = ProtocolConfig { flooding: false, ..ProtocolConfig::default() };
        let mut sim = SkipRingSim::from_world(legit_world(5, seed, cfg), cfg);
        let ids = sim.subscriber_ids();
        for (i, &host) in assignment.iter().enumerate() {
            let p = skippub_trie::Publication::new(i as u64, format!("{i}").into_bytes());
            sim.seed_publication(ids[host], p);
        }
        let (_, ok) = sim.run_until_pubs_converged(30_000);
        prop_assert!(ok);
        let (converged, total) = sim.publications_converged();
        prop_assert!(converged);
        // Distinct (author, payload) pairs in the assignment.
        let distinct = assignment.len();
        prop_assert_eq!(total, distinct);
    }
}

// ---------------------------------------------------------------------
// Link-fault properties: any fault schedule whose loss stays below 1.0
// and whose windows close leaves a self-stabilizing system that heals —
// legitimacy and publication convergence are reached after the last
// window; and total loss on an edge set is *the same fault* as a
// scheduled partition of that set.
// ---------------------------------------------------------------------

/// A random subscriber group (IDs 2..9 — inside the 8-member population
/// bootstrapped below, never the supervisor at 0).
fn arb_group(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(2u64..9, 1..=max_len).prop_map(|mut g| {
        g.sort_unstable();
        g.dedup();
        g
    })
}

/// A random fault rule with `drop < 1.0` and a window that closes
/// within 14 relative rounds, over a random link class.
fn arb_rule() -> impl Strategy<Value = FaultRule> {
    let link = prop_oneof![
        Just(LinkClass::All),
        Just(LinkClass::AnyLocal),
        arb_group(3).prop_map(LinkClass::Group),
    ];
    (
        (0u64..6, 1u64..9, link),
        (0.0f64..0.95, 0.0f64..0.4),
        (0.0f64..0.6, 1u32..4),
        (0.0f64..0.4, 1u32..5),
    )
        .prop_map(
            |((from, span, link), (drop, dup), (delay, delay_rounds), (reorder, reorder_max))| FaultRule {
                drop,
                dup,
                delay,
                delay_rounds,
                reorder,
                reorder_max,
                ..FaultRule::pass(from, from + span, link)
            },
        )
}

/// A random fault schedule: 1–3 rules (first match wins), 0–2 severed
/// groups, all windows closing within 14 relative rounds.
fn arb_fault_schedule() -> impl Strategy<Value = FaultSpec> {
    let sever = (0u64..6, 1u64..9, arb_group(2)).prop_map(|(from, span, group)| Sever {
        from_round: from,
        to_round: from + span,
        group,
    });
    (
        any::<u64>(),
        proptest::collection::vec(arb_rule(), 1..4),
        proptest::collection::vec(sever, 0..3),
    )
        .prop_map(|(seed, rules, severs)| FaultSpec { seed, rules, severs })
}

/// Bootstraps 8 subscribers on the sim backend to legitimacy, arms the
/// given schedule, publishes two stories into the fault windows, steps
/// past the last window (plus delay slack), and returns the backend and
/// ids ready for the post-heal verdict.
fn run_faulted(seed: u64, faults: FaultSpec) -> (Box<dyn PubSub>, Vec<NodeId>) {
    let t = TopicId(0);
    let mut ps: Box<dyn PubSub> = SystemBuilder::new(seed).build(skippub_core::BackendKind::Sim);
    let ids: Vec<NodeId> = (0..8).map(|_| ps.subscribe(t)).collect();
    let (_, ok) = ps.until_legit(30_000);
    assert!(ok, "fault-free bootstrap must stabilize");
    let horizon = faults.max_window_end() + 6;
    ps.set_faults(Some(faults));
    ps.publish(ids[0], t, b"into the storm".to_vec())
        .expect("alive author");
    ps.publish(ids[1], t, b"weathered".to_vec())
        .expect("alive author");
    for _ in 0..horizon {
        ps.step();
    }
    (ps, ids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Healing: after the last window closes, *any* sub-total-loss
    /// schedule leaves a system that re-legitimizes and converges both
    /// publications to every member.
    #[test]
    fn any_closing_fault_schedule_heals(
        seed in any::<u64>(),
        faults in arb_fault_schedule(),
    ) {
        let (mut ps, _) = run_faulted(seed, faults);
        let (rounds, ok) = ps.until_legit(30_000);
        prop_assert!(ok, "never re-legitimized after heal ({rounds} rounds)");
        let (_, ok) = ps.until_pubs_converged(30_000);
        prop_assert!(ok, "publications never reconverged after heal");
        let (converged, total) = ps.publications_converged();
        prop_assert!(converged);
        prop_assert_eq!(total, 2);
    }

    /// Equivalence: total loss (`drop = 1.0`) on a group's edge set is
    /// indistinguishable from a scheduled partition of that group —
    /// same drop count, same delivered sets, member for member.
    #[test]
    fn total_loss_is_a_partition(
        seed in any::<u64>(),
        group in arb_group(3),
        from in 0u64..5,
        span in 1u64..8,
    ) {
        let lossy = FaultSpec {
            seed: 0xED6E,
            rules: vec![FaultRule {
                drop: 1.0,
                ..FaultRule::pass(from, from + span, LinkClass::Group(group.clone()))
            }],
            severs: vec![],
        };
        let severed = FaultSpec {
            seed: 0xED6E,
            rules: vec![],
            severs: vec![Sever { from_round: from, to_round: from + span, group }],
        };
        let (mut a, ids) = run_faulted(seed, lossy);
        let (mut b, ids2) = run_faulted(seed, severed);
        prop_assert_eq!(&ids, &ids2);
        prop_assert_eq!(
            a.fault_counts().dropped_by_fault,
            b.fault_counts().dropped_by_fault,
            "total loss and a sever must cut the same messages"
        );
        prop_assert!(a.until_legit(30_000).1 && b.until_legit(30_000).1);
        prop_assert!(a.until_pubs_converged(30_000).1 && b.until_pubs_converged(30_000).1);
        for &m in &ids {
            let da: Vec<_> = a.drain_events(m);
            let db: Vec<_> = b.drain_events(m);
            prop_assert_eq!(da, db, "member {:?} saw different histories", m);
        }
    }
}
