//! Integration: Theorem 8 convergence + Theorem 13 closure across the
//! full stack (core protocol + simulator + checker), in both schedulers,
//! driven through the backend-agnostic [`PubSub`] facade.

use skippub_core::pubsub::SimBackend;
use skippub_core::scenarios::{adversarial_world, cold_world, legit_world, Adversary};
use skippub_core::{checker, ProtocolConfig, PubSub};
use skippub_sim::ChaosConfig;

const CFG_BUDGET: u64 = 40_000;

#[test]
fn all_adversaries_converge_round_mode() {
    let cfg = ProtocolConfig::topology_only();
    for adv in Adversary::all() {
        for n in [4usize, 13, 32] {
            for seed in [1u64, 2] {
                let world = adversarial_world(n, seed, cfg, adv);
                let mut ps = SimBackend::from_world(world, cfg);
                let (rounds, ok) = ps.until_legit(CFG_BUDGET);
                assert!(
                    ok,
                    "{} n={n} seed={seed} stuck after {rounds} rounds: {:?}",
                    adv.name(),
                    ps.report().issues.iter().take(4).collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn adversaries_converge_under_chaos_scheduler() {
    let cfg = ProtocolConfig::topology_only();
    let chaos = ChaosConfig {
        delivery_prob: 0.35,
        timeout_prob: 0.6,
        max_age: 10,
    };
    for adv in [
        Adversary::RandomState,
        Adversary::ShuffledLabels,
        Adversary::Partitioned(3),
    ] {
        let world = adversarial_world(20, 5, cfg, adv);
        let mut ps = SimBackend::from_world(world, cfg).with_chaos(chaos);
        let (rounds, ok) = ps.until_legit(CFG_BUDGET);
        assert!(ok, "{} stuck under chaos after {rounds} rounds", adv.name());
    }
}

#[test]
fn convergence_with_full_protocol_enabled() {
    // Publication machinery on (anti-entropy probes flowing) must not
    // impede topology stabilization.
    let cfg = ProtocolConfig::default();
    let world = adversarial_world(24, 9, cfg, Adversary::RandomState);
    let mut ps = SimBackend::from_world(world, cfg);
    let (_, ok) = ps.until_legit(CFG_BUDGET);
    assert!(ok);
}

#[test]
fn closure_holds_for_hundreds_of_rounds() {
    let cfg = ProtocolConfig::default();
    let mut ps = SimBackend::from_world(legit_world(48, 3, cfg), cfg);
    for round in 0..400 {
        ps.step();
        assert!(ps.is_legitimate(), "closure violated at round {round}");
    }
    // And no topology-mutating traffic beyond SetData refreshes.
    let m = ps.metrics();
    assert_eq!(m.kind("Intro"), 0, "no Intro messages in legitimate states");
    assert_eq!(m.kind("Subscribe"), 0);
    assert_eq!(m.kind("RemoveConnections"), 0);
}

#[test]
fn cold_bootstrap_scales() {
    let cfg = ProtocolConfig::topology_only();
    for n in [1usize, 2, 3, 50, 200] {
        let mut ps = SimBackend::from_world(cold_world(n, 8, cfg), cfg);
        let (rounds, ok) = ps.until_legit(CFG_BUDGET);
        assert!(ok, "cold n={n} stuck");
        // Eager joining makes this fast — far below the round-robin bound.
        assert!(rounds < 100 + n as u64, "cold n={n} took {rounds} rounds");
    }
}

#[test]
fn legitimacy_checker_agrees_with_scenarios() {
    let cfg = ProtocolConfig::topology_only();
    for n in [1usize, 2, 5, 16, 64] {
        let world = legit_world(n, 1, cfg);
        let report = checker::check_topology(&world);
        assert!(report.ok(), "legit_world({n}) flagged: {:?}", report.issues);
    }
}

#[test]
fn convergence_rounds_grow_roughly_linearly() {
    // The supervisor pushes one config per timeout, so convergence from
    // label-shuffled states is Θ(n)-ish; verify the growth is not
    // super-quadratic (shape check for EXPERIMENTS.md's E6 table).
    let cfg = ProtocolConfig::topology_only();
    let mut rounds_at = Vec::new();
    for n in [16usize, 64] {
        let mut total = 0u64;
        for seed in [1u64, 2, 3] {
            let world = adversarial_world(n, seed, cfg, Adversary::ShuffledLabels);
            let mut ps = SimBackend::from_world(world, cfg);
            let (r, ok) = ps.until_legit(CFG_BUDGET);
            assert!(ok);
            total += r;
        }
        rounds_at.push(total as f64 / 3.0);
    }
    let ratio = rounds_at[1] / rounds_at[0].max(1.0);
    assert!(
        ratio < 16.0,
        "n 16→64 blew up rounds by {ratio:.1}× (expected ≲ 4×ish)"
    );
}
