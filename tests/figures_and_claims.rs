//! Integration: every experiment of the harness must pass (these are the
//! executable forms of the paper's figures and quantitative claims).

use skippub_harness::{experiments, Scale};

#[test]
fn all_experiments_pass() {
    for (name, f) in experiments::registry() {
        let report = f(Scale::Small, 7);
        assert!(
            report.ok(),
            "{name} ({}) failed: {:?}",
            report.artefact,
            report
                .verdicts
                .iter()
                .filter(|(_, ok)| !ok)
                .map(|(v, _)| v)
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn experiments_are_seed_stable() {
    // Same seed ⇒ same verdicts (tables may embed timings-free data only).
    for (name, f) in experiments::registry() {
        let a = f(Scale::Small, 11);
        let b = f(Scale::Small, 11);
        assert_eq!(
            a.tables.iter().map(|t| &t.rows).collect::<Vec<_>>(),
            b.tables.iter().map(|t| &t.rows).collect::<Vec<_>>(),
            "{name} is not deterministic per seed"
        );
    }
}

#[test]
fn figure1_exact_triples() {
    use skippub_ringmath::Label;
    // Independent spot re-check of the Figure 1 data used by E1.
    let expect: [(u64, &str, &str); 5] = [
        (0, "0", "0"),
        (1, "1", "1/2"),
        (9, "0011", "3/16"),
        (10, "0101", "5/16"),
        (15, "1111", "15/16"),
    ];
    for (x, label, frac) in expect {
        let l = Label::from_index(x);
        assert_eq!(l.to_string(), label);
        assert_eq!(l.r_fraction(), frac);
    }
}
