//! Integration: the threaded runtime must reach the same legitimate
//! states as the simulator, under real concurrency, delays and crashes.

use skippub_core::checker;
use skippub_net::{NetConfig, Network};
use std::time::Duration;

fn cfg(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        min_delay: Duration::from_micros(20),
        max_delay: Duration::from_millis(1),
        timeout_interval: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

#[test]
fn sixteen_threads_stabilize_and_publish() {
    let mut net = Network::start(cfg(51));
    let ids: Vec<_> = (0..16).map(|_| net.spawn_subscriber()).collect();
    assert!(net.await_legitimate(Duration::from_secs(60)));
    // The snapshot satisfies the very same checker the simulator uses.
    let snap = net.snapshot();
    assert!(checker::check_topology(&snap).ok());
    for &id in ids.iter().take(4) {
        net.publish(id, format!("from {id:?}").into_bytes());
    }
    assert!(net.await_pubs_converged(Duration::from_secs(60)));
    let (_, n_pubs) = checker::publications_converged(&net.snapshot());
    assert_eq!(n_pubs, 4);
    net.shutdown();
}

#[test]
fn staggered_joins_churn_and_recovery() {
    let mut net = Network::start(cfg(52));
    let mut ids = Vec::new();
    for i in 0..10 {
        ids.push(net.spawn_subscriber());
        if i % 3 == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(net.await_legitimate(Duration::from_secs(60)));
    net.crash(ids[1]);
    net.unsubscribe(ids[6]);
    std::thread::sleep(Duration::from_millis(20));
    net.report_crash(ids[1]);
    assert!(net.await_legitimate(Duration::from_secs(120)));
    let snap = net.snapshot();
    let sup = snap.iter().find_map(|(_, a)| a.supervisor()).expect("sup");
    assert_eq!(sup.n(), 8);
    net.shutdown();
}

#[test]
fn wire_reordering_does_not_break_convergence() {
    // Exaggerated delay spread → heavy reordering.
    let mut net = Network::start(NetConfig {
        seed: 53,
        min_delay: Duration::from_micros(1),
        max_delay: Duration::from_millis(8),
        timeout_interval: Duration::from_millis(2),
        ..NetConfig::default()
    });
    for _ in 0..8 {
        net.spawn_subscriber();
    }
    assert!(net.await_legitimate(Duration::from_secs(120)));
    net.shutdown();
}
