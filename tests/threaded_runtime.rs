//! Integration: the threaded runtime must reach the same legitimate
//! states as the simulator, under real concurrency, delays and crashes —
//! driven through the same [`PubSub`] facade the simulated backends use.
//! Facade steps are 10 ms wall-clock slices, so the budgets below are
//! time budgets (e.g. 6000 steps ≈ 60 s worst case).

use skippub_core::{checker, PubSub, TopicId};
use skippub_net::{NetBackend, NetConfig};
use std::time::Duration;

const T: TopicId = TopicId(0);

fn cfg(seed: u64) -> NetConfig {
    NetConfig {
        seed,
        min_delay: Duration::from_micros(20),
        max_delay: Duration::from_millis(1),
        timeout_interval: Duration::from_millis(2),
        ..NetConfig::default()
    }
}

#[test]
fn sixteen_threads_stabilize_and_publish() {
    let mut ps = NetBackend::start(cfg(51));
    let ids: Vec<_> = (0..16).map(|_| ps.subscribe(T)).collect();
    assert!(ps.until_legit(6000).1);
    // The snapshot satisfies the very same checker the simulator uses.
    let snap = ps.snapshot(T);
    assert!(checker::check_topology(&snap).ok());
    for &id in ids.iter().take(4) {
        ps.publish(id, T, format!("from {id:?}").into_bytes());
    }
    assert!(ps.until_pubs_converged(6000).1);
    let (_, n_pubs) = ps.publications_converged();
    assert_eq!(n_pubs, 4);
    // Every subscriber observed all four deliveries.
    for &id in &ids {
        assert_eq!(ps.drain_events(id).len(), 4);
    }
    ps.shutdown();
}

#[test]
fn staggered_joins_churn_and_recovery() {
    let mut ps = NetBackend::start(cfg(52));
    let mut ids = Vec::new();
    for i in 0..10 {
        ids.push(ps.subscribe(T));
        if i % 3 == 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(ps.until_legit(6000).1);
    ps.crash(ids[1]);
    ps.unsubscribe(ids[6], T);
    std::thread::sleep(Duration::from_millis(20));
    ps.report_crash(ids[1]);
    assert!(ps.until_legit(12000).1);
    let snap = ps.snapshot(T);
    let sup = snap.iter().find_map(|(_, a)| a.supervisor()).expect("sup");
    assert_eq!(sup.n(), 8);
    ps.shutdown();
}

#[test]
fn wire_reordering_does_not_break_convergence() {
    // Exaggerated delay spread → heavy reordering.
    let mut ps = NetBackend::start(NetConfig {
        seed: 53,
        min_delay: Duration::from_micros(1),
        max_delay: Duration::from_millis(8),
        timeout_interval: Duration::from_millis(2),
        ..NetConfig::default()
    });
    for _ in 0..8 {
        ps.subscribe(T);
    }
    assert!(ps.until_legit(12000).1);
    ps.shutdown();
}
