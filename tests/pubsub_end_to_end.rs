//! Integration: the full publish-subscribe semantics — targeted delivery,
//! history for late joiners, flooding vs anti-entropy, multi-topic
//! isolation.

use skippub_core::topics::{MultiActor, TopicId};
use skippub_core::{Actor, ProtocolConfig, SkipRingSim};
use skippub_sim::{NodeId, World};
use skippub_trie::Publication;

#[test]
fn every_subscriber_gets_every_publication() {
    let mut sim = SkipRingSim::new(21, ProtocolConfig::default());
    let ids: Vec<_> = (0..10).map(|_| sim.add_subscriber()).collect();
    let (_, ok) = sim.run_until_legit(2000);
    assert!(ok);
    for (i, &id) in ids.iter().enumerate() {
        sim.publish(id, format!("msg from {i}").into_bytes());
    }
    let (_, ok) = sim.run_until_pubs_converged(2000);
    assert!(ok);
    for &id in &ids {
        assert_eq!(sim.subscriber(id).expect("alive").trie.len(), 10);
    }
}

#[test]
fn late_joiner_receives_full_history() {
    let mut sim = SkipRingSim::new(22, ProtocolConfig::default());
    let ids: Vec<_> = (0..6).map(|_| sim.add_subscriber()).collect();
    sim.run_until_legit(2000);
    for i in 0..20 {
        sim.publish(ids[i % ids.len()], format!("h{i}").into_bytes());
    }
    sim.run_until_pubs_converged(2000);
    // Join late; history must arrive although no flooding re-occurs.
    let late = sim.add_subscriber();
    let (_, ok) = sim.run_until_legit(4000);
    assert!(ok);
    let (_, ok) = sim.run_until_pubs_converged(8000);
    assert!(ok, "late joiner never caught up");
    let s = sim.subscriber(late).expect("alive");
    assert_eq!(s.trie.len(), 20);
    assert!(
        s.counters.pubs_via_sync > 0,
        "history must come from anti-entropy"
    );
}

#[test]
fn flooding_disabled_still_converges() {
    let cfg = ProtocolConfig {
        flooding: false,
        ..ProtocolConfig::default()
    };
    let mut sim = SkipRingSim::new(23, cfg);
    let ids: Vec<_> = (0..8).map(|_| sim.add_subscriber()).collect();
    sim.run_until_legit(2000);
    sim.publish(ids[0], b"slow but sure".to_vec());
    let (rounds, ok) = sim.run_until_pubs_converged(8000);
    assert!(ok);
    assert!(rounds > 0);
    for &id in &ids {
        let s = sim.subscriber(id).expect("alive");
        assert_eq!(s.counters.pubs_via_flood, 0, "flooding was disabled");
    }
}

#[test]
fn flooding_is_much_faster_than_anti_entropy() {
    let run = |flooding: bool| -> u64 {
        let cfg = ProtocolConfig {
            flooding,
            ..ProtocolConfig::default()
        };
        let mut sim = SkipRingSim::new(24, cfg);
        let ids: Vec<_> = (0..24).map(|_| sim.add_subscriber()).collect();
        sim.run_until_legit(4000);
        sim.publish(ids[5], b"race".to_vec());
        let (rounds, ok) = sim.run_until_pubs_converged(20_000);
        assert!(ok);
        rounds
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with <= without,
        "flooding ({with} rounds) should not be slower than anti-entropy alone ({without})"
    );
    assert!(
        with <= 4,
        "flooding should deliver in O(log n) ≈ 2 rounds, took {with}"
    );
}

#[test]
fn duplicate_publications_are_idempotent() {
    let mut sim = SkipRingSim::new(25, ProtocolConfig::default());
    let ids: Vec<_> = (0..5).map(|_| sim.add_subscriber()).collect();
    sim.run_until_legit(2000);
    // Same author, same payload → same key → one publication.
    sim.publish(ids[0], b"once".to_vec());
    sim.publish(ids[0], b"once".to_vec());
    sim.run_until_pubs_converged(2000);
    for &id in &ids {
        assert_eq!(sim.subscriber(id).expect("alive").trie.len(), 1);
    }
    // Same payload from another author is a different publication.
    sim.publish(ids[1], b"once".to_vec());
    sim.run_until_pubs_converged(2000);
    assert_eq!(sim.subscriber(ids[3]).expect("alive").trie.len(), 2);
}

#[test]
fn publications_survive_author_departure() {
    let mut sim = SkipRingSim::new(26, ProtocolConfig::default());
    let ids: Vec<_> = (0..6).map(|_| sim.add_subscriber()).collect();
    sim.run_until_legit(2000);
    sim.publish(ids[0], b"legacy".to_vec());
    sim.run_until_pubs_converged(2000);
    sim.unsubscribe(ids[0]);
    let (_, ok) = sim.run_until_legit(4000);
    assert!(ok);
    for &id in ids.iter().skip(1) {
        assert_eq!(sim.subscriber(id).expect("alive").trie.len(), 1);
    }
}

#[test]
fn topics_are_isolated() {
    const SUP: NodeId = NodeId(0);
    let mut w: World<MultiActor> = World::new(27);
    w.add_node(SUP, MultiActor::new_supervisor(SUP));
    let cfg = ProtocolConfig::default();
    for i in 1..=6u64 {
        let mut c = MultiActor::new_client(NodeId(i), SUP, cfg);
        c.join_topic(TopicId(if i <= 3 { 1 } else { 2 }));
        w.add_node(NodeId(i), c);
    }
    for _ in 0..200 {
        w.run_round();
    }
    // Publish into topic 1 from node 1.
    w.with_node(NodeId(1), |actor, _ctx| {
        let sub = actor.topic_subscriber_mut(TopicId(1)).expect("joined");
        sub.trie.insert(Publication::new(1, b"t1 only".to_vec()));
    });
    for _ in 0..300 {
        w.run_round();
    }
    for i in 1..=3u64 {
        let got = w
            .node(NodeId(i))
            .and_then(|a| a.topic_subscriber(TopicId(1)))
            .map(|s| s.trie.len())
            .unwrap_or(0);
        assert_eq!(got, 1, "topic-1 member {i} missing the publication");
    }
    for i in 4..=6u64 {
        let crossed = w
            .node(NodeId(i))
            .and_then(|a| a.topic_subscriber(TopicId(2)))
            .map(|s| s.trie.len())
            .unwrap_or(0);
        assert_eq!(
            crossed, 0,
            "topic-2 member {i} must not see topic-1 content"
        );
    }
}

#[test]
fn corrupted_tries_reconcile() {
    // Subscribers start with arbitrary, different publication sets
    // (Theorem 17's arbitrary initial distribution).
    let cfg = ProtocolConfig {
        flooding: false,
        ..ProtocolConfig::default()
    };
    let mut sim = SkipRingSim::new(28, cfg);
    let ids: Vec<_> = (0..6).map(|_| sim.add_subscriber()).collect();
    sim.run_until_legit(2000);
    for (i, &id) in ids.iter().enumerate() {
        for j in 0..=i {
            let p = Publication::new(j as u64 * 31, format!("seed{j}").into_bytes());
            sim.world
                .node_mut(id)
                .and_then(Actor::subscriber_mut)
                .map(|s| s.trie.insert(p));
        }
    }
    let (_, ok) = sim.run_until_pubs_converged(20_000);
    assert!(ok);
    let (converged, total) = sim.publications_converged();
    assert!(converged);
    assert_eq!(total, ids.len());
}
