//! Integration: the full publish-subscribe semantics — targeted delivery,
//! history for late joiners, flooding vs anti-entropy, multi-topic
//! isolation — exercised exclusively through the backend-agnostic
//! [`PubSub`] facade (deliveries observed via `drain_events`, state via
//! facade snapshots; no reaching into `sim.world` or `subscriber.trie`).

use skippub_core::{ProtocolConfig, PubSub, SystemBuilder, TopicId};
use skippub_sim::NodeId;
use skippub_trie::Publication;

const T: TopicId = TopicId(0);

#[test]
fn every_subscriber_gets_every_publication() {
    let mut ps = SystemBuilder::new(21).build_sim();
    let ids: Vec<_> = (0..10).map(|_| ps.subscribe(T)).collect();
    let (_, ok) = ps.until_legit(2000);
    assert!(ok);
    for (i, &id) in ids.iter().enumerate() {
        ps.publish(id, T, format!("msg from {i}").into_bytes());
    }
    let (_, ok) = ps.until_pubs_converged(2000);
    assert!(ok);
    for &id in &ids {
        assert_eq!(ps.drain_events(id).len(), 10);
    }
}

#[test]
fn late_joiner_receives_full_history() {
    let mut ps = SystemBuilder::new(22).build_sim();
    let ids: Vec<_> = (0..6).map(|_| ps.subscribe(T)).collect();
    ps.until_legit(2000);
    for i in 0..20 {
        ps.publish(ids[i % ids.len()], T, format!("h{i}").into_bytes());
    }
    ps.until_pubs_converged(2000);
    // Join late; history must arrive although no flooding re-occurs.
    let late = ps.subscribe(T);
    let (_, ok) = ps.until_legit(4000);
    assert!(ok);
    let (_, ok) = ps.until_pubs_converged(8000);
    assert!(ok, "late joiner never caught up");
    assert_eq!(ps.drain_events(late).len(), 20);
    let snap = ps.snapshot(T);
    let s = snap
        .node(late)
        .and_then(skippub_core::Actor::subscriber)
        .expect("alive");
    assert!(
        s.counters.pubs_via_sync > 0,
        "history must come from anti-entropy"
    );
}

#[test]
fn flooding_disabled_still_converges() {
    let cfg = ProtocolConfig {
        flooding: false,
        ..ProtocolConfig::default()
    };
    let mut ps = SystemBuilder::new(23).protocol(cfg).build_sim();
    let ids: Vec<_> = (0..8).map(|_| ps.subscribe(T)).collect();
    ps.until_legit(2000);
    ps.publish(ids[0], T, b"slow but sure".to_vec());
    let (rounds, ok) = ps.until_pubs_converged(8000);
    assert!(ok);
    assert!(rounds > 0);
    let snap = ps.snapshot(T);
    for &id in &ids {
        let s = snap
            .node(id)
            .and_then(skippub_core::Actor::subscriber)
            .expect("alive");
        assert_eq!(s.counters.pubs_via_flood, 0, "flooding was disabled");
    }
}

#[test]
fn flooding_is_much_faster_than_anti_entropy() {
    let run = |flooding: bool| -> u64 {
        let cfg = ProtocolConfig {
            flooding,
            ..ProtocolConfig::default()
        };
        let mut ps = SystemBuilder::new(24).protocol(cfg).build_sim();
        let ids: Vec<_> = (0..24).map(|_| ps.subscribe(T)).collect();
        ps.until_legit(4000);
        ps.publish(ids[5], T, b"race".to_vec());
        let (rounds, ok) = ps.until_pubs_converged(20_000);
        assert!(ok);
        rounds
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with <= without,
        "flooding ({with} rounds) should not be slower than anti-entropy alone ({without})"
    );
    assert!(
        with <= 4,
        "flooding should deliver in O(log n) ≈ 2 rounds, took {with}"
    );
}

#[test]
fn duplicate_publications_are_idempotent() {
    let mut ps = SystemBuilder::new(25).build_sim();
    let ids: Vec<_> = (0..5).map(|_| ps.subscribe(T)).collect();
    ps.until_legit(2000);
    // Same author, same payload → same key → one publication.
    ps.publish(ids[0], T, b"once".to_vec());
    ps.publish(ids[0], T, b"once".to_vec());
    ps.until_pubs_converged(2000);
    for &id in &ids {
        assert_eq!(ps.drain_events(id).len(), 1);
    }
    // Same payload from another author is a different publication.
    ps.publish(ids[1], T, b"once".to_vec());
    ps.until_pubs_converged(2000);
    let ev = ps.drain_events(ids[3]);
    assert_eq!(ev.len(), 1, "exactly the new publication arrives");
    assert_eq!(ev[0].author, ids[1].0);
}

#[test]
fn publications_survive_author_departure() {
    let mut ps = SystemBuilder::new(26).build_sim();
    let ids: Vec<_> = (0..6).map(|_| ps.subscribe(T)).collect();
    ps.until_legit(2000);
    ps.publish(ids[0], T, b"legacy".to_vec());
    ps.until_pubs_converged(2000);
    ps.unsubscribe(ids[0], T);
    let (_, ok) = ps.until_legit(4000);
    assert!(ok);
    for &id in ids.iter().skip(1) {
        let ev = ps.drain_events(id);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].payload, b"legacy");
    }
}

#[test]
fn topics_are_isolated() {
    let mut ps = SystemBuilder::new(27).topics(2).build_multi();
    let (t1, t2) = (TopicId(0), TopicId(1));
    let group1: Vec<NodeId> = (0..3).map(|_| ps.subscribe(t1)).collect();
    let group2: Vec<NodeId> = (0..3).map(|_| ps.subscribe(t2)).collect();
    let (_, ok) = ps.until_legit(2000);
    assert!(ok);
    ps.publish(group1[0], t1, b"t1 only".to_vec()).unwrap();
    let (_, ok) = ps.until_pubs_converged(2000);
    assert!(ok);
    for &id in &group1 {
        let ev = ps.drain_events(id);
        assert_eq!(ev.len(), 1, "topic-1 member {id} missing the publication");
        assert_eq!(ev[0].topic, t1);
    }
    for &id in &group2 {
        assert!(
            ps.drain_events(id).is_empty(),
            "topic-2 member {id} must not see topic-1 content"
        );
    }
}

#[test]
fn corrupted_tries_reconcile() {
    // Subscribers start with arbitrary, different publication sets
    // (Theorem 17's arbitrary initial distribution).
    let cfg = ProtocolConfig {
        flooding: false,
        ..ProtocolConfig::default()
    };
    let mut ps = SystemBuilder::new(28).protocol(cfg).build_sim();
    let ids: Vec<_> = (0..6).map(|_| ps.subscribe(T)).collect();
    ps.until_legit(2000);
    for (i, &id) in ids.iter().enumerate() {
        for j in 0..=i {
            let p = Publication::new(j as u64 * 31, format!("seed{j}").into_bytes());
            ps.seed_publication(id, T, p);
        }
    }
    let (_, ok) = ps.until_pubs_converged(20_000);
    assert!(ok);
    let (converged, total) = ps.publications_converged();
    assert!(converged);
    assert_eq!(total, ids.len());
}
