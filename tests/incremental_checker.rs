//! Incremental-vs-from-scratch checker conformance under churn: the
//! facade's cached `is_legitimate` / `publications_converged` verdicts
//! must equal the pre-PR from-scratch computations (`*_full`) **after
//! every round** of a long randomized churn script — the correctness
//! bar of the incremental checking layer, exercised on the multi-topic
//! and sharded backends (whose per-topic member index and verdict
//! caches carry the most state) and on the single-topic sim/chaos
//! backends.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skippub_core::pubsub::{MultiTopicBackend, ShardedBackend, SimBackend};
use skippub_core::{PubSub, SystemBuilder, TopicId};
use skippub_sim::NodeId;

/// Drives `rounds` rounds of randomized churn (arrivals, joins, leaves,
/// crashes with delayed detector reports, publishes, seeds) and checks
/// incremental == from-scratch after every round. `full`/`incr` adapt
/// over the concrete backend type (the `_full` twins are inherent
/// methods, not part of the `PubSub` trait).
fn churn_conformance<B: PubSub>(
    ps: &mut B,
    topics: u32,
    seed: u64,
    rounds: u32,
    full: impl Fn(&B) -> (bool, (bool, usize)),
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<NodeId> = Vec::new();
    let mut pending_reports: Vec<(u32, NodeId)> = Vec::new();
    // Initial population: 3 clients per topic.
    for t in 0..topics {
        for _ in 0..3 {
            live.push(ps.subscribe(TopicId(t)));
        }
    }
    for round in 0..rounds {
        // A couple of random ops per round.
        for _ in 0..2 {
            let t = TopicId(rng.random_range(0..topics as usize) as u32);
            match rng.random_range(0..10usize) {
                0 => live.push(ps.subscribe(t)),
                1 => {
                    if let Some(&id) = live.get(rng.random_range(0..live.len().max(1)) % live.len().max(1)) {
                        ps.join(id, t);
                    }
                }
                2
                    if !live.is_empty() => {
                        let id = live[rng.random_range(0..live.len())];
                        ps.unsubscribe(id, t);
                    }
                3
                    if live.len() > topics as usize => {
                        let id = live.swap_remove(rng.random_range(0..live.len()));
                        ps.crash(id);
                        pending_reports.push((round + 3, id));
                    }
                4 | 5
                    if !live.is_empty() => {
                        let id = live[rng.random_range(0..live.len())];
                        let payload = format!("r{round} by {id}").into_bytes();
                        ps.publish(id, t, payload);
                    }
                6
                    if !live.is_empty() => {
                        let id = live[rng.random_range(0..live.len())];
                        let p = skippub_trie::Publication::new(id.0, format!("seed {round}").into_bytes());
                        ps.seed_publication(id, t, p);
                    }
                _ => {}
            }
        }
        // Detector reports land with a 3-round delay.
        pending_reports.retain(|&(due, id)| {
            if due <= round {
                ps.report_crash(id);
                false
            } else {
                true
            }
        });
        ps.step();
        let (legit_full, pubs_full) = full(ps);
        assert_eq!(
            ps.is_legitimate(),
            legit_full,
            "round {round}: incremental legitimacy diverged from from-scratch"
        );
        assert_eq!(
            ps.publications_converged(),
            pubs_full,
            "round {round}: incremental convergence diverged from from-scratch"
        );
    }
}

#[test]
fn multi_topic_incremental_matches_full_over_200_churn_rounds() {
    let topics = 8u32;
    let mut ps = SystemBuilder::new(0xC0FFEE).topics(topics).build_multi();
    churn_conformance(&mut ps, topics, 17, 200, |ps: &MultiTopicBackend| {
        (ps.is_legitimate_full(), ps.publications_converged_full())
    });
}

#[test]
fn sharded_incremental_matches_full_over_200_churn_rounds() {
    let topics = 8u32;
    let mut ps = SystemBuilder::new(0xC0FFEE)
        .topics(topics)
        .shards(4)
        .threads(2)
        .build_sharded();
    churn_conformance(&mut ps, topics, 18, 200, |ps: &ShardedBackend| {
        (ps.is_legitimate_full(), ps.publications_converged_full())
    });
}

#[test]
fn sim_and_chaos_incremental_matches_full_under_churn() {
    for chaos in [false, true] {
        let b = SystemBuilder::new(0xFACADE);
        let mut ps = if chaos { b.build_chaos() } else { b.build_sim() };
        churn_conformance(&mut ps, 1, 19, 120, |ps: &SimBackend| {
            (ps.is_legitimate_full(), ps.publications_converged_full())
        });
    }
}

#[test]
fn full_checking_switch_routes_to_the_from_scratch_path() {
    // The A/B switch used by the checker bench: with full checking on,
    // the facade verdicts still agree (they are the same predicate).
    let mut ps = SystemBuilder::new(5).topics(3).build_multi();
    for t in 0..3 {
        ps.subscribe(TopicId(t));
        ps.subscribe(TopicId(t));
    }
    assert!(ps.until_legit(4_000).1);
    let inc = (ps.is_legitimate(), ps.publications_converged());
    ps.set_full_checking(true);
    assert_eq!((ps.is_legitimate(), ps.publications_converged()), inc);
    ps.set_full_checking(false);
    assert_eq!((ps.is_legitimate(), ps.publications_converged()), inc);
}

#[test]
fn raw_world_access_invalidates_cached_verdicts() {
    // The escape hatch must not leave stale verdicts behind: corrupting
    // a subscriber through `world_mut` after a cached "legitimate" poll
    // must flip the next poll.
    let mut ps = SystemBuilder::new(6).topics(2).build_multi();
    let a = ps.subscribe(TopicId(0));
    ps.subscribe(TopicId(0));
    ps.subscribe(TopicId(1));
    assert!(ps.until_legit(4_000).1);
    assert!(ps.is_legitimate());
    let world = ps.world_mut();
    let actor = world.node_mut(a).unwrap();
    let sub = actor.topic_subscriber_mut(TopicId(0)).unwrap();
    sub.label = Some("111111".parse().unwrap());
    assert!(!ps.is_legitimate(), "corruption behind the facade must be seen");
    assert_eq!(ps.is_legitimate(), ps.is_legitimate_full());
    // Same for the sim backend's escape hatch.
    let mut ps = SystemBuilder::new(7).build_sim();
    let a = ps.subscribe(TopicId(0));
    ps.subscribe(TopicId(0));
    assert!(ps.until_legit(2_000).1);
    assert!(ps.is_legitimate());
    let s = ps
        .sim_mut()
        .world_mut()
        .node_mut(a)
        .unwrap()
        .subscriber_mut()
        .unwrap();
    s.left = None;
    s.right = None;
    s.ring = None;
    assert_eq!(ps.is_legitimate(), ps.is_legitimate_full());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Randomized-seed variant of the churn conformance on both
    /// multi-world backends (shorter horizon; the 200-round fixed-seed
    /// tests above are the deep soak).
    #[test]
    fn incremental_matches_full_for_random_seeds(seed in any::<u64>()) {
        let topics = 5u32;
        let mut ps = SystemBuilder::new(seed).topics(topics).build_multi();
        churn_conformance(&mut ps, topics, seed ^ 0x55, 60, |ps: &MultiTopicBackend| {
            (ps.is_legitimate_full(), ps.publications_converged_full())
        });
        let mut ps = SystemBuilder::new(seed)
            .topics(topics)
            .shards(3)
            .build_sharded();
        churn_conformance(&mut ps, topics, seed ^ 0xAA, 60, |ps: &ShardedBackend| {
            (ps.is_legitimate_full(), ps.publications_converged_full())
        });
    }
}
