//! Rebalancing determinism: topic→shard handoffs and subscriber
//! migration are driven purely by round-synchronous state (round
//! number, per-partition delivered counters, supervisor databases), so
//! a zipf-skewed churning workload with rebalancing **enabled** must
//! stay byte-identical across worker-thread counts — delivered sets,
//! traffic stats (incl. per-partition), and every topic's final
//! checker-snapshot digest. A snapshot taken mid-handoff (forwarding
//! tombstones live, subscribers freshly migrated) must round-trip
//! byte-exactly and continue identically.

use skippub_core::pubsub::PubSub;
use skippub_core::{SystemBuilder, TopicId};
use skippub_harness::scenario::{self, Popularity, ScenarioSpec, Stop};

/// ~200 rounds of zipf-skewed subscriptions with continuous churn, on
/// 4 shards with a rebalance decision every 7 rounds — enough skew that
/// the hysteresis gate opens and handoffs actually fire.
fn zipf_churn_spec(name: &'static str) -> ScenarioSpec {
    ScenarioSpec::new(name, 0x5EED_BA1A)
        .topics(8)
        .shards(4)
        .population(32)
        .popularity(Popularity::Zipf { s: 1.1 })
        .publishers(6)
        .publish_prob(0.3)
        .arrivals_per_round(0.3)
        .departures_per_round(0.25)
        .rounds(200)
        .stop(Stop::FixedRounds)
        .rebalance_every(7)
}

/// Canonical digest of a per-topic checker snapshot (same shape as the
/// facade-conformance digest): byte-identical digests mean
/// byte-identical final topology state.
fn snapshot_digest(snap: &skippub_sim::World<skippub_core::Actor>) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for (id, actor) in snap.iter() {
        if let Some(sup) = actor.supervisor() {
            let _ = write!(text, "S{}:n={};", id.0, sup.n());
            for (label, node) in &sup.database {
                let _ = write!(text, "{label:?}->{node:?};");
            }
        } else if let Some(sub) = actor.subscriber() {
            let _ = write!(
                text,
                "C{}:{:?},{:?},{:?};",
                id.0,
                sub.label,
                sub.left.as_ref().map(|r| r.id),
                sub.right.as_ref().map(|r| r.id)
            );
        }
    }
    format!(
        "{:032x}",
        skippub_bits::Hash128::of_bytes(text.as_bytes()).0
    )
}

/// Sharded backend, rebalancing on: threads 1/2/4/8 must produce
/// byte-identical delivered sets, stats, and checker digests — and the
/// run must have performed at least one handoff, or the test would
/// vacuously pass without exercising migration.
#[test]
fn sharded_rebalancing_is_byte_identical_across_thread_counts() {
    let base = zipf_churn_spec("rebalance-determinism-sharded");
    let mut reference: Option<(scenario::ScenarioOutcome, Vec<String>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let spec = base.clone().threads(threads);
        let mut ps = scenario::builder_for(&spec).build_sharded();
        let out = scenario::run_on(&mut ps, &spec, 1);
        assert!(
            out.report.ok(),
            "threads={threads}: {}",
            out.report.to_json()
        );
        assert!(
            ps.rebalances() > 0,
            "threads={threads}: the zipf skew must trigger at least one handoff"
        );
        let digests: Vec<String> = (0..spec.topics)
            .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
            .collect();
        match &reference {
            None => reference = Some((out, digests)),
            Some((ref_out, ref_digests)) => {
                assert_eq!(
                    out.report.delivered_fingerprint, ref_out.report.delivered_fingerprint,
                    "threads={threads}: delivered fingerprint diverges"
                );
                assert_eq!(
                    out.delivered, ref_out.delivered,
                    "threads={threads}: delivered sets diverge"
                );
                assert_eq!(
                    out.report.stats, ref_out.report.stats,
                    "threads={threads}: traffic stats (incl. per-partition) diverge"
                );
                assert_eq!(
                    &digests, ref_digests,
                    "threads={threads}: final checker snapshots diverge"
                );
            }
        }
    }
}

/// The multi-topic backend now runs on the partitioned executor too;
/// the same zipf + churn workload must be thread-count-invariant there
/// (rebalancing is a sharded-only mechanism — the builder setting is
/// ignored — but the partitioned execution must still be exact).
#[test]
fn multi_backend_is_byte_identical_across_thread_counts() {
    let base = zipf_churn_spec("rebalance-determinism-multi");
    let mut reference: Option<(scenario::ScenarioOutcome, Vec<String>)> = None;
    for threads in [1usize, 2, 4, 8] {
        let spec = base.clone().threads(threads);
        let mut ps = scenario::builder_for(&spec).build_multi();
        let out = scenario::run_on(&mut ps, &spec, 1);
        assert!(
            out.report.ok(),
            "threads={threads}: {}",
            out.report.to_json()
        );
        let digests: Vec<String> = (0..spec.topics)
            .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
            .collect();
        match &reference {
            None => reference = Some((out, digests)),
            Some((ref_out, ref_digests)) => {
                assert_eq!(
                    out.delivered, ref_out.delivered,
                    "threads={threads}: delivered sets diverge"
                );
                assert_eq!(
                    out.report.stats, ref_out.report.stats,
                    "threads={threads}: traffic stats diverge"
                );
                assert_eq!(
                    &digests, ref_digests,
                    "threads={threads}: final checker snapshots diverge"
                );
            }
        }
    }
}

/// Snapshot round-trip mid-handoff: run a skewed population until the
/// first rebalance decision fires (forwarding tombstones live, clients
/// freshly migrated), save, restore, re-save — the re-saved snapshot
/// must be byte-equal — then continue both runs and require identical
/// stats, rebalance counts, and checker digests.
#[test]
fn snapshot_round_trips_mid_handoff() {
    let topics: u32 = 8;
    let build = || {
        SystemBuilder::new(0xAB5EED)
            .topics(topics)
            .shards(4)
            .rebalance_every(5)
            .build_sharded()
    };
    let mut ps = build();
    // Skewed population: half the clients on topic 0 (trailing-zeros
    // popularity), so one shard starts overloaded.
    let mut publishers = Vec::new();
    for i in 0u64..48 {
        let t = TopicId((i + 1).trailing_zeros().min(topics - 1));
        let id = ps.subscribe(t);
        if i < 4 {
            publishers.push((id, t));
        }
    }
    let mut round = 0u8;
    while ps.rebalances() == 0 {
        assert!(round < 100, "skew never triggered a rebalance");
        for &(id, t) in &publishers {
            ps.publish(id, t, vec![round]);
        }
        ps.step();
        round += 1;
    }

    let saved = ps.save_snapshot().expect("sharded snapshots");
    let reparsed = skippub_core::pubsub::BackendSnapshot::from_text(saved.as_text())
        .expect("serialized snapshot must reparse");
    let mut restored = skippub_core::pubsub::restore(&reparsed).expect("restore");
    let resaved = restored.save_snapshot().expect("re-save");
    assert_eq!(
        saved.as_text(),
        resaved.as_text(),
        "mid-handoff snapshot must re-serialize byte-identically"
    );

    // Both runs continue through more traffic and further rebalance
    // decisions; every observable must stay identical.
    let continue_run = |ps: &mut dyn PubSub| {
        for r in 0..50u8 {
            for &(id, t) in &publishers {
                ps.publish(id, t, vec![200u8.wrapping_add(r)]);
            }
            ps.step();
        }
    };
    continue_run(&mut ps);
    continue_run(restored.as_mut());
    assert_eq!(ps.stats(), restored.stats(), "continued stats diverge");
    let digests = |ps: &dyn PubSub| -> Vec<String> {
        (0..topics)
            .map(|t| snapshot_digest(&ps.snapshot(TopicId(t))))
            .collect()
    };
    assert_eq!(
        digests(&ps),
        digests(restored.as_ref()),
        "continued checker snapshots diverge"
    );
    assert_eq!(
        ps.save_snapshot().expect("final").as_text(),
        restored.save_snapshot().expect("final").as_text(),
        "continued final snapshots diverge"
    );
}
