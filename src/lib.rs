//! # skippub-repro
//!
//! Umbrella crate for the reproduction of *"Self-Stabilizing Supervised
//! Publish-Subscribe Systems"* (Feldmann, Kolb, Scheideler, Strothmann).
//! Re-exports the component crates so examples and integration tests can
//! use one coherent namespace. See `README.md` for a tour and `DESIGN.md`
//! for the system inventory.

pub use skippub_baselines as baselines;
pub use skippub_bits as bits;
pub use skippub_core as core;
pub use skippub_harness as harness;
pub use skippub_net as net;
pub use skippub_ringmath as ringmath;
pub use skippub_sim as sim;
pub use skippub_trie as trie;
