//! A group-communication service built on the pub-sub layer — one of the
//! applications the paper's introduction motivates ("chat groups,
//! collaborative working groups…"). Each chat room is a topic; the
//! paper's guarantee that every subscriber "eventually knows all of the
//! publications that have been issued so far" becomes *full chat history
//! for late joiners* with no server storing messages.
//!
//! The room is written against `Box<dyn PubSub>`, so the same chat logic
//! runs on any backend the `SystemBuilder` can construct.
//!
//! ```text
//! cargo run --release --example group_chat
//! ```

use skippub_core::{BackendKind, PubSub, SystemBuilder, TopicId};
use skippub_sim::NodeId;
use std::collections::BTreeMap;

const ROOM: TopicId = TopicId(0);

struct Chat {
    ps: Box<dyn PubSub>,
    /// Per-member transcript, fed exclusively by drained delivery events.
    transcripts: BTreeMap<NodeId, Vec<(u64, String)>>,
}

impl Chat {
    fn new(ps: Box<dyn PubSub>) -> Self {
        Chat {
            ps,
            transcripts: BTreeMap::new(),
        }
    }

    fn join(&mut self) -> NodeId {
        let id = self.ps.subscribe(ROOM);
        let (_, ok) = self.ps.until_legit(4000);
        assert!(ok, "room must restabilize after a join");
        self.transcripts.insert(id, Vec::new());
        id
    }

    fn say(&mut self, who: NodeId, name: &str, text: &str) {
        let line = format!("{name}: {text}");
        self.ps
            .publish(who, ROOM, line.into_bytes())
            .expect("member is online");
        let (_, ok) = self.ps.until_pubs_converged(4000);
        assert!(ok, "message must reach the room");
        self.pump();
    }

    /// Drains everyone's new deliveries into their transcripts.
    fn pump(&mut self) {
        for (&member, transcript) in self.transcripts.iter_mut() {
            for d in self.ps.drain_events(member) {
                transcript.push((d.author, String::from_utf8_lossy(&d.payload).into_owned()));
            }
            // Patricia tries store by key; order by author for a stable view.
            transcript.sort();
        }
    }

    fn transcript(&self, who: NodeId) -> Vec<String> {
        self.transcripts
            .get(&who)
            .map(|t| t.iter().map(|(_, l)| l.clone()).collect())
            .unwrap_or_default()
    }
}

fn main() {
    // The same room logic would run on any backend kind.
    let mut chat = Chat::new(SystemBuilder::new(1234).build(BackendKind::Sim));

    let alice = chat.join();
    let bob = chat.join();
    println!("✓ alice and bob joined room #overlay");

    chat.say(alice, "alice", "anyone here?");
    chat.say(bob, "bob", "yes! the ring has diameter log n, we're close");
    chat.say(alice, "alice", "publishing without a broker feels illegal");

    // Carol joins late — and receives the entire history via the
    // self-stabilizing anti-entropy layer.
    let carol = chat.join();
    let (_, ok) = chat.ps.until_pubs_converged(4000);
    assert!(ok);
    chat.pump();
    println!("✓ carol joined late and synced the room history:");
    for line in chat.transcript(carol) {
        println!("    {line}");
    }
    assert_eq!(chat.transcript(carol).len(), 3);

    chat.say(carol, "carol", "reading backlog… done. hi both!");
    for &m in &[alice, bob, carol] {
        assert_eq!(chat.transcript(m).len(), 4, "everyone sees all 4 messages");
    }
    println!("✓ all members share the same 4-message transcript");

    // Bob leaves; the room keeps working and carol still sees everything.
    chat.ps.unsubscribe(bob, ROOM);
    let (_, ok) = chat.ps.until_legit(4000);
    assert!(ok);
    chat.transcripts.remove(&bob);
    chat.say(alice, "alice", "bye bob o/");
    assert_eq!(chat.transcript(carol).len(), 5);
    println!("✓ room re-stabilized after bob left; chat continues");
}
