//! A group-communication service built on the pub-sub layer — one of the
//! applications the paper's introduction motivates ("chat groups,
//! collaborative working groups…"). Each chat room is a topic; the
//! paper's guarantee that every subscriber "eventually knows all of the
//! publications that have been issued so far" becomes *full chat history
//! for late joiners* with no server storing messages.
//!
//! ```text
//! cargo run --release --example group_chat
//! ```

use skippub_core::{ProtocolConfig, SkipRingSim};
use skippub_sim::NodeId;

struct Chat {
    sim: SkipRingSim,
}

impl Chat {
    fn new() -> Self {
        Chat {
            sim: SkipRingSim::new(1234, ProtocolConfig::default()),
        }
    }

    fn join(&mut self) -> NodeId {
        let id = self.sim.add_subscriber();
        let (_, ok) = self.sim.run_until_legit(4000);
        assert!(ok, "room must restabilize after a join");
        id
    }

    fn say(&mut self, who: NodeId, name: &str, text: &str) {
        let line = format!("{name}: {text}");
        self.sim
            .publish(who, line.into_bytes())
            .expect("member is online");
        let (_, ok) = self.sim.run_until_pubs_converged(4000);
        assert!(ok, "message must reach the room");
    }

    fn transcript(&self, who: NodeId) -> Vec<String> {
        let mut lines: Vec<(u64, String)> = self
            .sim
            .subscriber(who)
            .expect("member")
            .trie
            .publications()
            .iter()
            .map(|p| {
                (
                    p.author(),
                    String::from_utf8_lossy(p.payload()).into_owned(),
                )
            })
            .collect();
        // Patricia tries store by key; order by author for a stable view.
        lines.sort();
        lines.into_iter().map(|(_, l)| l).collect()
    }
}

fn main() {
    let mut chat = Chat::new();

    let alice = chat.join();
    let bob = chat.join();
    println!("✓ alice and bob joined room #overlay");

    chat.say(alice, "alice", "anyone here?");
    chat.say(bob, "bob", "yes! the ring has diameter log n, we're close");
    chat.say(alice, "alice", "publishing without a broker feels illegal");

    // Carol joins late — and receives the entire history via the
    // self-stabilizing anti-entropy layer.
    let carol = chat.join();
    let (_, ok) = chat.sim.run_until_pubs_converged(4000);
    assert!(ok);
    println!("✓ carol joined late and synced the room history:");
    for line in chat.transcript(carol) {
        println!("    {line}");
    }
    assert_eq!(chat.transcript(carol).len(), 3);

    chat.say(carol, "carol", "reading backlog… done. hi both!");
    for &m in &[alice, bob, carol] {
        assert_eq!(chat.transcript(m).len(), 4, "everyone sees all 4 messages");
    }
    println!("✓ all members share the same 4-message transcript");

    // Bob leaves; the room keeps working and carol still sees everything.
    chat.sim.unsubscribe(bob);
    let (_, ok) = chat.sim.run_until_legit(4000);
    assert!(ok);
    chat.say(alice, "alice", "bye bob o/");
    assert_eq!(chat.transcript(carol).len(), 5);
    println!("✓ room re-stabilized after bob left; chat continues");
}
