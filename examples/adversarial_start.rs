//! Self-stabilization, visualized: start from a thoroughly corrupted
//! state — partitioned components with conflicting labels, garbage in
//! every channel — and watch the legitimate-state checker's issue count
//! fall to zero (Theorem 8). The corrupted worlds are wrapped in the
//! `PubSub` facade's sim backend (`SimBackend::from_world`) and driven
//! with facade steps.
//!
//! ```text
//! cargo run --release --example adversarial_start
//! ```

use skippub_core::pubsub::SimBackend;
use skippub_core::scenarios::{adversarial_world, Adversary};
use skippub_core::{ProtocolConfig, PubSub};

fn main() {
    let n = 24;
    let cfg = ProtocolConfig::topology_only();

    for adversary in Adversary::all() {
        let world = adversarial_world(n, 99, cfg, adversary);
        let mut ps = SimBackend::from_world(world, cfg);
        println!("\n▶ initial state: {} (n = {n})", adversary.name());
        let mut round = 0u64;
        let mut last_issues = usize::MAX;
        loop {
            let issues = ps.report().issues.len();
            if issues != last_issues && (round.is_multiple_of(5) || issues == 0) {
                println!("  round {round:>4}: {issues:>3} invariant violations");
                last_issues = issues;
            }
            if issues == 0 {
                break;
            }
            assert!(round < 40_000, "did not converge");
            ps.step();
            round += 1;
        }
        println!("  ✓ legitimate after {round} rounds");
        // Closure: once the state *and the channels* have settled, the
        // system stays legitimate. Stale messages left in flight by the
        // adversarial start may still perturb the topology transiently
        // (the model only promises eventual permanence), so demand 50
        // *consecutive* legitimate rounds.
        let mut streak = 0;
        while streak < 50 {
            ps.step();
            round += 1;
            streak = if ps.is_legitimate() { streak + 1 } else { 0 };
            assert!(round < 40_000, "legitimacy never became permanent");
        }
        println!("  ✓ stayed legitimate for 50 consecutive rounds (closure)");
    }
    println!("\n✓ all adversarial families converged and stayed converged");
}
