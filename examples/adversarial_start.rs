//! Self-stabilization, visualized: start from a thoroughly corrupted
//! state — partitioned components with conflicting labels, garbage in
//! every channel — and watch the legitimate-state checker's issue count
//! fall to zero (Theorem 8).
//!
//! ```text
//! cargo run --release --example adversarial_start
//! ```

use skippub_core::scenarios::{adversarial_world, Adversary};
use skippub_core::{ProtocolConfig, SkipRingSim};

fn main() {
    let n = 24;
    let cfg = ProtocolConfig::topology_only();

    for adversary in Adversary::all() {
        let world = adversarial_world(n, 99, cfg, adversary);
        let mut sim = SkipRingSim::from_world(world, cfg);
        println!("\n▶ initial state: {} (n = {n})", adversary.name());
        let mut round = 0u64;
        let mut last_issues = usize::MAX;
        loop {
            let issues = sim.report().issues.len();
            if issues != last_issues && (round.is_multiple_of(5) || issues == 0) {
                println!("  round {round:>4}: {issues:>3} invariant violations");
                last_issues = issues;
            }
            if issues == 0 {
                break;
            }
            assert!(round < 40_000, "did not converge");
            sim.run_round();
            round += 1;
        }
        println!("  ✓ legitimate after {round} rounds");
        // Closure: it stays legitimate.
        for _ in 0..50 {
            sim.run_round();
        }
        assert!(sim.is_legitimate(), "closure violated");
        println!("  ✓ still legitimate 50 rounds later (closure)");
    }
    println!("\n✓ all adversarial families converged and stayed converged");
}
