//! Churn under real concurrency: the threaded runtime (`skippub-net`)
//! runs every node on its own OS thread with randomly delayed, reordered
//! messages. Nodes crash without warning and leave gracefully; the
//! supervisor's single failure detector (§3.3) is the only failure
//! information in the whole system.
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use skippub_net::{NetConfig, Network};
use std::time::{Duration, Instant};

fn main() {
    let cfg = NetConfig {
        seed: 2024,
        min_delay: Duration::from_micros(20),
        max_delay: Duration::from_millis(1),
        timeout_interval: Duration::from_millis(3),
        ..NetConfig::default()
    };
    let mut net = Network::start(cfg);

    let n = 12;
    let ids: Vec<_> = (0..n).map(|_| net.spawn_subscriber()).collect();
    let t0 = Instant::now();
    assert!(
        net.await_legitimate(Duration::from_secs(60)),
        "bootstrap stalled"
    );
    println!(
        "✓ {n} threaded subscribers stabilized in {:.2?}",
        t0.elapsed()
    );

    // Publish a few messages so there is state to preserve through churn.
    for (i, &id) in ids.iter().take(3).enumerate() {
        net.publish(id, format!("pre-churn message {i}").into_bytes());
    }
    assert!(net.await_pubs_converged(Duration::from_secs(60)));
    println!("✓ 3 publications delivered to everyone");

    // Churn: two crashes (abrupt thread kills) + one graceful leave.
    let t1 = Instant::now();
    net.crash(ids[2]);
    net.crash(ids[7]);
    net.unsubscribe(ids[4]);
    println!(
        "… crashed {:?} and {:?}, unsubscribed {:?}",
        ids[2], ids[7], ids[4]
    );

    // The eventually-correct failure detector reports after a delay.
    std::thread::sleep(Duration::from_millis(30));
    net.report_crash(ids[2]);
    net.report_crash(ids[7]);

    assert!(
        net.await_legitimate(Duration::from_secs(120)),
        "recovery stalled"
    );
    println!("✓ re-stabilized {:.2?} after the churn burst", t1.elapsed());

    // The survivors still hold the complete publication history.
    assert!(net.await_pubs_converged(Duration::from_secs(60)));
    let snap = net.snapshot();
    let survivors = snap
        .iter()
        .filter_map(|(_, a)| a.subscriber())
        .filter(|s| s.wants_membership)
        .count();
    let sup_n = snap
        .iter()
        .find_map(|(_, a)| a.supervisor())
        .expect("supervisor")
        .n();
    println!("✓ {survivors} survivors (database size {sup_n}), history intact");
    assert_eq!(sup_n, n - 3);

    let (sent, delivered, dropped) = net.wire_stats();
    println!("wire: {sent} sent, {delivered} delivered, {dropped} consumed by crashes");
    net.shutdown();
}
