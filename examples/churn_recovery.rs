//! Churn under real concurrency: the threaded runtime (`skippub-net`)
//! runs every node on its own OS thread with randomly delayed, reordered
//! messages. Nodes crash without warning and leave gracefully; the
//! supervisor's single failure detector (§3.3) is the only failure
//! information in the whole system.
//!
//! The whole scenario is driven through the same `PubSub` facade the
//! simulated backends use — a facade `step` is a 10 ms wall-clock slice
//! here, so the `until_*` budgets are time deadlines.
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use skippub_core::{PubSub, TopicId};
use skippub_net::{NetBackend, NetConfig};
use std::time::{Duration, Instant};

const T: TopicId = TopicId(0);

fn main() {
    let cfg = NetConfig {
        seed: 2024,
        min_delay: Duration::from_micros(20),
        max_delay: Duration::from_millis(1),
        timeout_interval: Duration::from_millis(3),
        ..NetConfig::default()
    };
    let mut ps = NetBackend::start(cfg);

    let n = 12;
    let ids: Vec<_> = (0..n).map(|_| ps.subscribe(T)).collect();
    let t0 = Instant::now();
    assert!(ps.until_legit(6000).1, "bootstrap stalled");
    println!(
        "✓ {n} threaded subscribers stabilized in {:.2?}",
        t0.elapsed()
    );

    // Publish a few messages so there is state to preserve through churn.
    for (i, &id) in ids.iter().take(3).enumerate() {
        ps.publish(id, T, format!("pre-churn message {i}").into_bytes());
    }
    assert!(ps.until_pubs_converged(6000).1);
    println!("✓ 3 publications delivered to everyone");

    // Churn: two crashes (abrupt thread kills) + one graceful leave.
    let t1 = Instant::now();
    ps.crash(ids[2]);
    ps.crash(ids[7]);
    ps.unsubscribe(ids[4], T);
    println!(
        "… crashed {:?} and {:?}, unsubscribed {:?}",
        ids[2], ids[7], ids[4]
    );

    // The eventually-correct failure detector reports after a delay.
    std::thread::sleep(Duration::from_millis(30));
    ps.report_crash(ids[2]);
    ps.report_crash(ids[7]);

    assert!(ps.until_legit(12000).1, "recovery stalled");
    println!("✓ re-stabilized {:.2?} after the churn burst", t1.elapsed());

    // The survivors still hold the complete publication history,
    // observed through the facade's event API.
    assert!(ps.until_pubs_converged(6000).1);
    let snap = ps.snapshot(T);
    let mut survivors = 0;
    for &id in &ids {
        let is_member = snap
            .node(id)
            .and_then(skippub_core::Actor::subscriber)
            .map(|s| s.wants_membership)
            .unwrap_or(false);
        if is_member {
            let events = ps.drain_events(id);
            assert_eq!(events.len(), 3, "survivor {id:?} missing history");
            survivors += 1;
        }
    }
    let sup_n = snap
        .iter()
        .find_map(|(_, a)| a.supervisor())
        .expect("supervisor")
        .n();
    println!("✓ {survivors} survivors (database size {sup_n}), history intact");
    assert_eq!(sup_n, n - 3);

    let stats = ps.stats();
    println!(
        "wire: {} sent, {} delivered, {} consumed by crashes",
        stats.sent, stats.delivered, stats.dropped
    );
    ps.shutdown();
}
