//! Quickstart: build a self-stabilizing supervised publish-subscribe
//! topic through the backend-agnostic `PubSub` facade, let it converge,
//! publish, and watch every subscriber receive the publication.
//!
//! Swapping `build_sim()` for `build_chaos()`, `build_multi()`,
//! `build_sharded()` — or `NetBackend::from_builder` — runs the same
//! client code on a different execution substrate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skippub_core::{PubSub, SystemBuilder, TopicId};

const T: TopicId = TopicId(0);

fn main() {
    // A deterministic simulated deployment: one supervisor, one topic.
    let mut ps = SystemBuilder::new(42).build_sim();

    // Eight subscribers join. Nobody coordinates anything: each node just
    // runs its periodic Timeout and the system self-organizes.
    let subscribers: Vec<_> = (0..8).map(|_| ps.subscribe(T)).collect();
    let (rounds, ok) = ps.until_legit(1000);
    assert!(ok);
    println!("✓ topic stabilized into a supervised skip ring after {rounds} rounds");

    // Inspect the topology via a facade snapshot: labels, ring
    // neighbours, shortcuts.
    let snap = ps.snapshot(T);
    println!("\n  node  label  left   right  ring   shortcuts");
    for &id in &subscribers {
        let s = snap
            .node(id)
            .and_then(skippub_core::Actor::subscriber)
            .expect("alive");
        let fmt = |r: Option<skippub_core::NodeRef>| {
            r.map(|r| r.label.to_string()).unwrap_or_else(|| "⊥".into())
        };
        println!(
            "  {id:<5} {:<6} {:<6} {:<6} {:<6} {:?}",
            s.label.map(|l| l.to_string()).unwrap_or_default(),
            fmt(s.left),
            fmt(s.right),
            fmt(s.ring),
            s.shortcuts
                .keys()
                .map(|l| l.to_string())
                .collect::<Vec<_>>(),
        );
    }

    // Alice publishes. Flooding delivers in O(log n) hops; the Patricia-
    // trie anti-entropy would repair any miss.
    let alice = subscribers[0];
    let key = ps
        .publish(alice, T, b"hello, overlay world".to_vec())
        .expect("alive");
    let (rounds, ok) = ps.until_pubs_converged(100);
    assert!(ok);
    println!("\n✓ publication {key} reached all subscribers in {rounds} rounds");

    // Deliveries are observed through the facade's event API.
    for &id in &subscribers {
        let events = ps.drain_events(id);
        assert_eq!(events.len(), 1);
        println!(
            "  {id} received {:?} = {:?} (author {})",
            events[0].key.to_string(),
            String::from_utf8_lossy(&events[0].payload),
            events[0].author,
        );
    }

    // A ninth subscriber joins late — and still receives the publication
    // ("every subscriber of a topic will eventually know all of the
    //  publications that have been issued so far", §1).
    let late = ps.subscribe(T);
    let (_, ok) = ps.until_legit(1000);
    assert!(ok);
    let (rounds, ok) = ps.until_pubs_converged(2000);
    assert!(ok);
    println!("\n✓ late joiner {late} caught up on history after {rounds} more rounds");
    assert_eq!(ps.drain_events(late).len(), 1);
}
