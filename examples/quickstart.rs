//! Quickstart: build a self-stabilizing supervised publish-subscribe
//! topic, let it converge, publish, and watch every subscriber receive
//! the publication.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skippub_core::{ProtocolConfig, SkipRingSim};

fn main() {
    // A deterministic simulated deployment: one supervisor, one topic.
    let mut sim = SkipRingSim::new(42, ProtocolConfig::default());

    // Eight subscribers join. Nobody coordinates anything: each node just
    // runs its periodic Timeout and the system self-organizes.
    let subscribers: Vec<_> = (0..8).map(|_| sim.add_subscriber()).collect();
    let (rounds, ok) = sim.run_until_legit(1000);
    assert!(ok);
    println!("✓ topic stabilized into a supervised skip ring after {rounds} rounds");

    // Inspect the topology: labels, ring neighbours, shortcuts.
    println!("\n  node  label  left   right  ring   shortcuts");
    for &id in &subscribers {
        let s = sim.subscriber(id).expect("alive");
        let fmt = |r: Option<skippub_core::NodeRef>| {
            r.map(|r| r.label.to_string()).unwrap_or_else(|| "⊥".into())
        };
        println!(
            "  {id:<5} {:<6} {:<6} {:<6} {:<6} {:?}",
            s.label.map(|l| l.to_string()).unwrap_or_default(),
            fmt(s.left),
            fmt(s.right),
            fmt(s.ring),
            s.shortcuts
                .keys()
                .map(|l| l.to_string())
                .collect::<Vec<_>>(),
        );
    }

    // Alice publishes. Flooding delivers in O(log n) hops; the Patricia-
    // trie anti-entropy would repair any miss.
    let alice = subscribers[0];
    let key = sim
        .publish(alice, b"hello, overlay world".to_vec())
        .expect("alive");
    let (rounds, ok) = sim.run_until_pubs_converged(100);
    assert!(ok);
    println!("\n✓ publication {key} reached all subscribers in {rounds} rounds");

    for &id in &subscribers {
        let s = sim.subscriber(id).expect("alive");
        let p = s.trie.publications()[0];
        println!(
            "  {id} stores {:?} = {:?}",
            p.key().to_string(),
            String::from_utf8_lossy(p.payload())
        );
    }

    // A ninth subscriber joins late — and still receives the publication
    // ("every subscriber of a topic will eventually know all of the
    //  publications that have been issued so far", §1).
    let late = sim.add_subscriber();
    let (_, ok) = sim.run_until_legit(1000);
    assert!(ok);
    let (rounds, ok) = sim.run_until_pubs_converged(2000);
    assert!(ok);
    println!("\n✓ late joiner {late} caught up on history after {rounds} more rounds");
    assert_eq!(sim.subscriber(late).expect("alive").trie.len(), 1);
}
