//! A topic-based news service (§4): one supervisor runs an independent
//! `BuildSR` instance per topic; clients subscribe to the topics they
//! care about and only ever receive matching stories.
//!
//! ```text
//! cargo run --release --example news_service
//! ```

use skippub_core::topics::{MultiActor, TopicId, TopicMsg};
use skippub_core::{Msg, ProtocolConfig};
use skippub_sim::{NodeId, World};
use skippub_trie::Publication;

const SUPERVISOR: NodeId = NodeId(0);
const POLITICS: TopicId = TopicId(1);
const SPORTS: TopicId = TopicId(2);
const TECH: TopicId = TopicId(3);

fn topic_name(t: TopicId) -> &'static str {
    match t {
        POLITICS => "politics",
        SPORTS => "sports",
        TECH => "tech",
        _ => "?",
    }
}

fn main() {
    let mut world: World<MultiActor> = World::new(7);
    world.add_node(SUPERVISOR, MultiActor::new_supervisor(SUPERVISOR));

    // Ten readers with different interests.
    let cfg = ProtocolConfig::default();
    let interests: &[(&str, &[TopicId])] = &[
        ("ada", &[POLITICS, TECH]),
        ("bob", &[SPORTS]),
        ("cyn", &[POLITICS, SPORTS, TECH]),
        ("dee", &[TECH]),
        ("eli", &[POLITICS]),
        ("fay", &[SPORTS, TECH]),
        ("gus", &[TECH]),
        ("hal", &[POLITICS, SPORTS]),
        ("ivy", &[SPORTS]),
        ("joe", &[TECH]),
    ];
    let mut ids = Vec::new();
    for (i, (name, topics)) in interests.iter().enumerate() {
        let id = NodeId(i as u64 + 1);
        let mut c = MultiActor::new_client(id, SUPERVISOR, cfg);
        for &t in *topics {
            c.join_topic(t);
        }
        world.add_node(id, c);
        ids.push((id, *name, *topics));
    }

    // Let all three skip rings stabilize.
    for _ in 0..300 {
        world.run_round();
    }
    let sup = world.node(SUPERVISOR).expect("supervisor");
    println!("topic subscriptions after stabilization:");
    for t in [POLITICS, SPORTS, TECH] {
        println!(
            "  {:<9} {} subscribers",
            topic_name(t),
            sup.topic_supervisor(t).map(|s| s.n()).unwrap_or(0)
        );
    }

    // Publish one story per topic (as the first subscriber of each).
    let stories = [
        (POLITICS, "election results certified"),
        (SPORTS, "underdogs win the cup"),
        (TECH, "self-stabilizing overlays ship v1.0"),
    ];
    for &(topic, text) in &stories {
        let author = ids
            .iter()
            .find(|(_, _, ts)| ts.contains(&topic))
            .map(|(id, _, _)| *id)
            .expect("someone subscribes");
        // Publish = insert into the author's per-topic trie + flood.
        world.with_node(author, |actor, ctx| {
            if let Some(sub) = actor.topic_subscriber_mut(topic) {
                let p = Publication::new(author.0, text.as_bytes().to_vec());
                if sub.trie.insert(p.clone()) {
                    let targets: Vec<NodeId> = [sub.left, sub.right, sub.ring]
                        .into_iter()
                        .flatten()
                        .map(|r| r.id)
                        .chain(sub.shortcuts.values().copied().flatten())
                        .collect();
                    for t in targets {
                        ctx.send(
                            t,
                            TopicMsg {
                                topic,
                                msg: Msg::PublishNew {
                                    publication: p.clone(),
                                    hops: 1,
                                },
                            },
                        );
                    }
                }
            }
        });
    }
    for _ in 0..200 {
        world.run_round();
    }

    // Every reader sees exactly the stories of their topics.
    println!("\ndeliveries:");
    let mut all_correct = true;
    for (id, name, topics) in &ids {
        let actor = world.node(*id).expect("alive");
        let mut got = Vec::new();
        for &(topic, text) in &stories {
            let has = actor
                .topic_subscriber(topic)
                .map(|s| !s.trie.publications().is_empty())
                .unwrap_or(false);
            if has {
                got.push(format!("{}: {text:?}", topic_name(topic)));
            }
            let should = topics.contains(&topic);
            if has != should {
                all_correct = false;
            }
        }
        println!(
            "  {name}: {}",
            if got.is_empty() {
                "—".into()
            } else {
                got.join(" | ")
            }
        );
    }
    assert!(
        all_correct,
        "targeted dissemination must match interests exactly"
    );
    println!("\n✓ every reader received exactly their subscribed topics' stories");
}
