//! A topic-based news service (§4): one supervisor runs an independent
//! `BuildSR` instance per topic; clients subscribe to the topics they
//! care about and only ever receive matching stories — all through the
//! backend-agnostic `PubSub` facade (publishing included: no hand-rolled
//! trie inserts or flood loops).
//!
//! ```text
//! cargo run --release --example news_service
//! ```

use skippub_core::{PubSub, SystemBuilder, TopicId};

const POLITICS: TopicId = TopicId(0);
const SPORTS: TopicId = TopicId(1);
const TECH: TopicId = TopicId(2);

fn topic_name(t: TopicId) -> &'static str {
    match t {
        POLITICS => "politics",
        SPORTS => "sports",
        TECH => "tech",
        _ => "?",
    }
}

fn main() {
    let mut ps = SystemBuilder::new(7).topics(3).build_multi();

    // Ten readers with different interests.
    let interests: &[(&str, &[TopicId])] = &[
        ("ada", &[POLITICS, TECH]),
        ("bob", &[SPORTS]),
        ("cyn", &[POLITICS, SPORTS, TECH]),
        ("dee", &[TECH]),
        ("eli", &[POLITICS]),
        ("fay", &[SPORTS, TECH]),
        ("gus", &[TECH]),
        ("hal", &[POLITICS, SPORTS]),
        ("ivy", &[SPORTS]),
        ("joe", &[TECH]),
    ];
    let mut ids = Vec::new();
    for (name, topics) in interests {
        let id = ps.subscribe(topics[0]);
        for &t in &topics[1..] {
            ps.join(id, t);
        }
        ids.push((id, *name, *topics));
    }

    // Let all three skip rings stabilize.
    let (rounds, ok) = ps.until_legit(2000);
    assert!(ok, "all three topics must stabilize");
    println!("topic subscriptions after stabilization ({rounds} rounds):");
    for t in [POLITICS, SPORTS, TECH] {
        let snap = ps.snapshot(t);
        let n = snap
            .iter()
            .find_map(|(_, a)| a.supervisor().map(|s| s.n()))
            .unwrap_or(0);
        println!("  {:<9} {n} subscribers", topic_name(t));
    }

    // Publish one story per topic (as the first subscriber of each) —
    // one facade call; flooding and anti-entropy do the rest.
    let stories = [
        (POLITICS, "election results certified"),
        (SPORTS, "underdogs win the cup"),
        (TECH, "self-stabilizing overlays ship v1.0"),
    ];
    for &(topic, text) in &stories {
        let author = ids
            .iter()
            .find(|(_, _, ts)| ts.contains(&topic))
            .map(|(id, _, _)| *id)
            .expect("someone subscribes");
        ps.publish(author, topic, text.as_bytes().to_vec())
            .expect("author subscribes to the topic");
    }
    let (_, ok) = ps.until_pubs_converged(2000);
    assert!(ok, "stories must reach every interested reader");

    // Every reader sees exactly the stories of their topics.
    println!("\ndeliveries:");
    let mut all_correct = true;
    for (id, name, topics) in &ids {
        let events = ps.drain_events(*id);
        let got: Vec<String> = events
            .iter()
            .map(|d| {
                format!(
                    "{}: {:?}",
                    topic_name(d.topic),
                    String::from_utf8_lossy(&d.payload).into_owned()
                )
            })
            .collect();
        for &(topic, _) in &stories {
            let has = events.iter().any(|d| d.topic == topic);
            if has != topics.contains(&topic) {
                all_correct = false;
            }
        }
        println!(
            "  {name}: {}",
            if got.is_empty() {
                "—".into()
            } else {
                got.join(" | ")
            }
        );
    }
    assert!(
        all_correct,
        "targeted dissemination must match interests exactly"
    );
    println!("\n✓ every reader received exactly their subscribed topics' stories");
}
