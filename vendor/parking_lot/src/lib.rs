//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's unwrap-free guard
//! API (`lock()`, `read()`, `write()` return guards directly). A lock
//! poisoned by a panicking holder is recovered rather than propagated —
//! matching parking_lot, which has no poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion (parking_lot-shaped API over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held; never panics on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Reader-writer lock (parking_lot-shaped API over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access; never panics on poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive write access; never panics on poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                *m2.lock() += 1;
            }
        });
        for _ in 0..100 {
            *m.lock() += 1;
        }
        t.join().unwrap();
        assert_eq!(*m.lock(), 200);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
