//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the *subset* of the rand 0.9 API the workspace uses,
//! backed by a deterministic xoshiro256\*\* generator (public-domain
//! algorithm by Blackman & Vigna) seeded through SplitMix64.
//!
//! Guarantees relied on by `skippub-sim` and the test suite:
//!
//! * [`rngs::StdRng`] is a pure integer-arithmetic PRNG — identical
//!   output on every platform and every run for the same seed;
//! * [`SeedableRng::seed_from_u64`] is the only seeding path, so world
//!   seeds map 1:1 onto generator states;
//! * `shuffle`, `random_range`, and `random_bool` each consume a fixed,
//!   documented number of draws, which is what makes the simulator's
//!   "same seed → identical metrics" fixtures meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` path is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose state is derived from `seed` via
    /// SplitMix64 (the conventional way to expand a 64-bit seed).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a primitive type (`rng.random::<u64>()`).
    fn random<T: UniformPrimitive>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    /// Consumes exactly one `u64` draw unless `p` is degenerate.
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            // 53 uniform mantissa bits → value in [0, 1).
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            unit < p
        }
    }

    /// Uniform draw from a range (`0..n`, `1..=k`, `k..`). Panics on an
    /// empty range. Consumes exactly one `u64` draw.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types obtainable from one `u64` draw.
pub trait UniformPrimitive {
    /// Maps a uniform `u64` onto a uniform value of `Self`.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformPrimitive for $t {
            #[inline]
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformPrimitive for bool {
    #[inline]
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange<T> {
    /// Uniform sample using `raw` (one pre-drawn uniform `u64`).
    fn sample_from(self, raw: u64) -> T;
}

macro_rules! sample_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (raw % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return raw as $t;
                }
                start + (raw % (width + 1)) as $t
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            #[inline]
            fn sample_from(self, raw: u64) -> $t {
                let width = (<$t>::MAX - self.start) as u64;
                if width == u64::MAX {
                    return raw as $t;
                }
                self.start + (raw % (width + 1)) as $t
            }
        }
    )*};
}
sample_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, raw: u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (raw >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256\*\* seeded via
    /// SplitMix64. Unlike upstream's ChaCha-based `StdRng` it is not
    /// cryptographic — the simulator only needs reproducibility.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot of the raw xoshiro256\*\* state words. Together with
        /// [`StdRng::from_state`] this allows checkpoint/restore of a
        /// generator mid-stream: the restored generator continues the
        /// exact same draw sequence (upstream `rand` has no equivalent;
        /// the simulator's world snapshots need it).
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. The caller is responsible for passing a
        /// state that came from a real generator (all-zero state is
        /// degenerate for xoshiro and is rejected by debug assertion).
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            debug_assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** scrambler + linear engine.
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Non-deterministically seeded generator (upstream's `rand::rng()`),
/// for tests that only need *some* variation run-to-run.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static CTR: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let uniq = CTR.fetch_add(1, Ordering::Relaxed);
    rngs::StdRng::seed_from_u64(nanos ^ uniq.rotate_left(32) ^ 0x5EED_CAFE_F00D_D00D)
}

/// Sequence helpers (`SliceRandom::shuffle`).
pub mod seq {
    use super::Rng;

    /// Random in-place permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle: consumes exactly `len - 1` draws for a
        /// non-empty slice (one per swap position, none for `len <= 1`).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.random_range(5u64..=5);
            assert_eq!(y, 5);
            let z = r.random_range(0u8..4);
            assert!(z < 4);
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let open = r.random_range(1u64..);
            assert!(open >= 1);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
