//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * strategies: integer/float ranges, [`any`], [`strategy::Just`],
//!   `prop_map`, tuples, [`prop_oneof!`], and [`collection::vec`],
//! * [`prelude`] re-exporting the above.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test's module path (override with the
//! `PROPTEST_RNG_SEED` env var), there is **no shrinking** — a failing
//! case reports its case index and seed so it can be replayed — and the
//! default case count is modest (override with `PROPTEST_CASES`).

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng;

/// Runner configuration and failure plumbing.
pub mod test_runner {
    use rand::SeedableRng;

    /// Subset of upstream's `Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for upstream compatibility; this stand-in does not
        /// shrink, so the value is never read.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(16);
            Config {
                cases,
                max_shrink_iters: 1024,
            }
        }
    }

    /// A failed case (no shrinking in this stand-in).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Drives one property: hands out one deterministic RNG per case.
    pub struct TestRunner {
        cases: u32,
        base_seed: u64,
    }

    impl TestRunner {
        /// `name` (usually `module_path!() :: test_name`) fixes the seed.
        pub fn new(cfg: &Config, name: &str) -> Self {
            let base_seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fnv1a(name.as_bytes()));
            TestRunner {
                cases: cfg.cases,
                base_seed,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Seed for case `i` (printable for replay).
        pub fn case_seed(&self, i: u32) -> u64 {
            self.base_seed ^ (u64::from(i)).wrapping_mul(0x9E3779B97F4A7C15)
        }

        /// Fresh generator for case `i`.
        pub fn case_rng(&self, i: u32) -> super::StdRng {
            super::StdRng::seed_from_u64(self.case_seed(i))
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::Rng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `prop_map` is `Self: Sized` so `Box<dyn Strategy>`
    /// works (needed by [`crate::prop_oneof!`]).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut super::StdRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut super::StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds from the macro's boxed strategy list.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs >= 1 alternative");
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut super::StdRng) -> T {
            let i = rng.random_range(0..self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut super::StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut super::StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut super::StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut super::StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut super::StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
    }

    /// `any::<T>()` marker strategy over a primitive's full domain.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-domain strategy for primitives (upstream's `any`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_impls {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut super::StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    any_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Upstream's `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let mut rng = runner.case_rng(case);
                // One shared tuple draw keeps strategies order-dependent
                // on a single deterministic stream.
                let ($($arg,)+) = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (replay with PROPTEST_RNG_SEED={}): {}",
                        case + 1,
                        runner.cases(),
                        runner.case_seed(case),
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($s) as _),+];
        $crate::strategy::Union::new(choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A,
        B(usize),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs(n in 2u64..9, xs in crate::collection::vec(0u32..5, 1..4)) {
            prop_assert!((2..9).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(p in prop_oneof![Just(Pick::A), (1usize..4).prop_map(Pick::B)]) {
            match p {
                Pick::A => {}
                Pick::B(k) => prop_assert!((1..4).contains(&k)),
            }
        }

        #[test]
        fn any_full_domain(x in any::<u64>(), b in any::<bool>()) {
            let _ = (x, b);
            prop_assert_eq!(x, x);
            prop_assert_ne!(b, !b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig { cases: 4, ..ProptestConfig::default() };
        let r1 = crate::test_runner::TestRunner::new(&cfg, "x::y");
        let r2 = crate::test_runner::TestRunner::new(&cfg, "x::y");
        let s = 0u64..1000;
        for i in 0..4 {
            assert_eq!(
                s.generate(&mut r1.case_rng(i)),
                s.generate(&mut r2.case_rng(i))
            );
        }
    }
}
