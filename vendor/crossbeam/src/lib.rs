//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by
//! `std::sync::mpsc::sync_channel`. The workspace uses channels in the
//! MPSC shape (many producers, one consumer thread), which std covers;
//! crossbeam's MPMC capability is not needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Bounded channels with crossbeam's names.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, TrySendError};

    /// Sending half (crossbeam's `Sender` ≈ std's `SyncSender`).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        match rx.recv_timeout(Duration::from_millis(5)) {
            Err(RecvTimeoutError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}
