//! Offline stand-in for `crossbeam`.
//!
//! Two modules are provided:
//!
//! * `channel`, backed by `std::sync::mpsc::sync_channel`. The
//!   workspace uses channels in the MPSC shape (many producers, one
//!   consumer thread), which std covers; crossbeam's MPMC capability is
//!   not needed.
//! * `thread`, backed by `std::thread::scope`. The workspace uses
//!   scoped workers in the fork-join shape (spawn over disjoint `&mut`
//!   chunks, join at the end of the scope), which std's scoped threads
//!   cover; only the closure signature differs from upstream (see the
//!   module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Scoped threads with crossbeam's entry-point shape.
///
/// Upstream's `crossbeam::thread::scope(|s| …)` returns a
/// `thread::Result` and hands each `spawn` closure a scope reference;
/// this stand-in delegates to `std::thread::scope`, whose `spawn`
/// closures take no argument and whose panics propagate on join. The
/// `Result` wrapper is kept so call sites read like upstream
/// (`scope(|s| …).unwrap()`).
pub mod thread {
    /// Spawns a fork-join scope; borrowed data outlives every worker.
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Bounded channels with crossbeam's names.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, TrySendError};

    /// Sending half (crossbeam's `Sender` ≈ std's `SyncSender`).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        match tx.try_send(2) {
            Err(TrySendError::Full(2)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        match rx.recv_timeout(Duration::from_millis(5)) {
            Err(RecvTimeoutError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn scope_joins_workers_over_disjoint_chunks() {
        let mut data = [0u64; 8];
        super::thread::scope(|s| {
            for chunk in data.chunks_mut(3) {
                s.spawn(move || {
                    for x in chunk.iter_mut() {
                        *x += 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, [1; 8]);
    }
}
