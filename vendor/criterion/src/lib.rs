//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BatchSize`, `criterion_group!`, `criterion_main!`,
//! [`black_box`] — over a plain wall-clock measurement loop (median of
//! `sample_size` samples, each auto-scaled to ≥ ~2 ms). There is no
//! statistical analysis or HTML report; each bench prints
//! `<group>/<name>  time: <t> per iter  (<iters/s>)`, and results are
//! collected in-process so driver binaries (the `BENCH_sim.json`
//! emitter) can read them back via [`Criterion::take_results`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, not acted on — the
/// stand-in always times per-batch with untimed setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per measurement.
    PerIteration,
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `"group/name"`.
    pub id: String,
    /// Median wall-clock time per iteration.
    pub per_iter: Duration,
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Opens a named group of benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Drains every result measured so far (driver binaries use this).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A named set of benches sharing a sample count.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each bench takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one bench. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let mut per_iter: Vec<Duration> = b.samples;
        per_iter.sort_unstable();
        let median = per_iter
            .get(per_iter.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let rate = if median.is_zero() {
            f64::INFINITY
        } else {
            1.0 / median.as_secs_f64()
        };
        println!("{id:<48} time: {median:>12.2?} per iter  ({rate:.0}/s)");
        self.parent.results.push(BenchResult { id, per_iter: median });
        self
    }

    /// Ends the group (upstream finalizes reports here; no-op).
    pub fn finish(self) {}
}

/// Timing context handed to each bench closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

/// Minimum measured wall time per sample; iteration counts auto-scale
/// until one sample takes at least this long.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

impl Bencher {
    /// Times `routine` (its return value is black-boxed).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: find an iteration count that fills
        // MIN_SAMPLE_TIME.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let took = t0.elapsed();
            if took >= MIN_SAMPLE_TIME || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Groups bench functions into one runner fn (upstream-compatible call
/// shape: `criterion_group!(benches, f1, f2, ...)`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the given groups (for `harness = false`
/// bench targets). Ignores CLI args such as cargo's `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("spin", |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
            g.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64; 64],
                    |v| v.into_iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "g/spin");
    }
}
